//! Matrix Market I/O.
//!
//! SD matrices are worth inspecting with external tools (and the
//! paper-style experiments are worth running on matrices from other
//! generators), so BCRS matrices round-trip through the standard
//! `MatrixMarket coordinate real general/symmetric` text format at
//! scalar granularity. Import re-blocks scalars into 3×3 blocks and
//! therefore requires the scalar dimension to be a multiple of three.

use crate::bcrs::BcrsMatrix;
use crate::block::Block3;
use crate::triplet::BlockTripletBuilder;
use crate::BLOCK_DIM;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors arising while reading Matrix Market data.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Writes `a` in `coordinate real general` format (scalar entries,
/// 1-based indices). Explicit zeros inside blocks are skipped.
pub fn write_matrix_market<W: Write>(
    a: &BcrsMatrix,
    out: W,
) -> Result<(), MmError> {
    let mut out = std::io::BufWriter::new(out);
    writeln!(out, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(out, "% exported by mrhs-sparse (BCRS 3x3 blocks)")?;
    let mut nnz = 0usize;
    for bi in 0..a.nb_rows() {
        let (_, blks) = a.block_row(bi);
        for b in blks {
            nnz += b.0.iter().filter(|v| **v != 0.0).count();
        }
    }
    writeln!(out, "{} {} {}", a.n_rows(), a.n_cols(), nnz)?;
    for bi in 0..a.nb_rows() {
        let (cols, blks) = a.block_row(bi);
        for (c, b) in cols.iter().zip(blks) {
            let bj = *c as usize;
            for i in 0..BLOCK_DIM {
                for j in 0..BLOCK_DIM {
                    let v = b.get(i, j);
                    if v != 0.0 {
                        writeln!(
                            out,
                            "{} {} {:.17e}",
                            bi * BLOCK_DIM + i + 1,
                            bj * BLOCK_DIM + j + 1,
                            v
                        )?;
                    }
                }
            }
        }
    }
    out.flush()?;
    Ok(())
}

/// Reads a `coordinate real` Matrix Market stream into a BCRS matrix.
/// Supports the `general` and `symmetric` symmetry qualifiers; the
/// scalar dimensions must be square and divisible by three.
pub fn read_matrix_market<R: Read>(input: R) -> Result<BcrsMatrix, MmError> {
    let mut lines = BufReader::new(input).lines();

    let header =
        lines.next().ok_or_else(|| MmError::Parse("empty file".into()))??;
    let header_l = header.to_ascii_lowercase();
    if !header_l.starts_with("%%matrixmarket matrix coordinate real") {
        return Err(MmError::Parse(format!("unsupported header: {header}")));
    }
    let symmetric = header_l.contains("symmetric");
    if !symmetric && !header_l.contains("general") {
        return Err(MmError::Parse("only general/symmetric supported".into()));
    }

    // size line (skipping comments)
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| MmError::Parse("missing size line".into()))??;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('%') {
            break trimmed.to_string();
        }
    };
    let mut parts = size_line.split_whitespace();
    let n_rows: usize = parse(parts.next(), "rows")?;
    let n_cols: usize = parse(parts.next(), "cols")?;
    let nnz: usize = parse(parts.next(), "nnz")?;
    if n_rows != n_cols {
        return Err(MmError::Parse("matrix must be square".into()));
    }
    if !n_rows.is_multiple_of(BLOCK_DIM) {
        return Err(MmError::Parse(format!(
            "scalar dimension {n_rows} not divisible by {BLOCK_DIM}"
        )));
    }

    let nb = n_rows / BLOCK_DIM;
    let mut builder = BlockTripletBuilder::square(nb);
    let mut partial: std::collections::HashMap<(usize, usize), Block3> =
        std::collections::HashMap::new();
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let i: usize = parse(parts.next(), "row index")?;
        let j: usize = parse(parts.next(), "col index")?;
        let v: f64 = parse(parts.next(), "value")?;
        if i == 0 || j == 0 || i > n_rows || j > n_cols {
            return Err(MmError::Parse(format!("index out of range: {i} {j}")));
        }
        let (i, j) = (i - 1, j - 1);
        seen += 1;
        *partial
            .entry((i / BLOCK_DIM, j / BLOCK_DIM))
            .or_insert(Block3::ZERO)
            .get_mut(i % BLOCK_DIM, j % BLOCK_DIM) += v;
        if symmetric && i != j {
            *partial
                .entry((j / BLOCK_DIM, i / BLOCK_DIM))
                .or_insert(Block3::ZERO)
                .get_mut(j % BLOCK_DIM, i % BLOCK_DIM) += v;
        }
    }
    if seen != nnz {
        return Err(MmError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    builder.reserve(partial.len());
    for ((bi, bj), block) in partial {
        builder.add(bi, bj, block);
    }
    Ok(builder.build())
}

fn parse<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
) -> Result<T, MmError> {
    field
        .ok_or_else(|| MmError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| MmError::Parse(format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(3);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 1, Block3::scaled_identity(3.0));
        t.add(2, 2, Block3::scaled_identity(4.0));
        t.add_symmetric_pair(
            0,
            2,
            Block3::from_rows([
                [0.5, 1.0, 0.0],
                [0.0, -0.5, 0.0],
                [0.25, 0.0, 0.125],
            ]),
        );
        t.build()
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let a = sample();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a.nb_rows(), b.nb_rows());
        let (da, db) = (a.to_dense(), b.to_dense());
        for (u, v) in da.iter().zip(&db) {
            assert!((u - v).abs() < 1e-15, "{u} vs {v}");
        }
    }

    #[test]
    fn symmetric_qualifier_mirrors_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n1 1 2.0\n3 1 0.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        let d = a.to_dense();
        assert_eq!(d[0], 2.0);
        assert_eq!(d[2 * 3], 0.5); // (3,1)
        assert_eq!(d[2], 0.5); // mirrored (1,3)
    }

    #[test]
    fn rejects_non_divisible_dimension() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        let text = "%%MatrixMarket matrix array real general\n3 3 0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn skips_comment_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\n3 3 1\n% another\n2 2 7.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.to_dense()[3 + 1], 7.5);
    }
}
