//! Level-blocked sparse matrix-power kernels (SpMPV).
//!
//! Every Chebyshev term and every CG iteration streams the whole matrix
//! once per multiply. Level-based blocking (Alappat et al.,
//! arXiv:2205.01598) computes `A·X, A²·X, …, A^k·X` in roughly **one**
//! matrix stream: block rows are split into contiguous cache-sized
//! chunks, and the chunk×power grid is executed along anti-diagonals —
//! chunk `i` at power `p` runs at stage `t = i + p − 1`, powers
//! ascending within a stage. A chunk's matrix rows are then touched at
//! `k` *consecutive* stages, so they stay cache-resident between powers
//! and the matrix is effectively fetched from memory once.
//!
//! **Validity.** Chunk `i` at power `p` reads columns of level `p − 1`
//! inside chunks `i − 1, i, i + 1` only, which is guaranteed by making
//! every chunk at least as long as the matrix's block bandwidth
//! ([`PowerPlan`] enforces this). Those dependencies execute at stages
//! `t − 2`, `t − 1`, and earlier in stage `t` (smaller `p` runs first),
//! so every read sees a fully computed level.
//!
//! **Determinism.** Each `(chunk, power)` cell is one
//! [`KernelBackend::gspmv_rows`] call over the full previous-level
//! vector, and a block row's accumulation never crosses a chunk — so
//! per backend kind, [`spmpv_powers`] is **bitwise identical** to `k`
//! sequential full-sweep GSPMV calls (the oracle pins this per kind).
//!
//! The fused Chebyshev entry point [`spmpv_chebyshev`] evaluates the
//! whole shifted three-term recurrence `u_{p+1} = 2·Ã·u_p − u_{p−1}`,
//! `Ã = (A − mid·I)/half`, accumulating `y = c_0/2·z + Σ c_p·u_p`
//! per chunk as each level is produced. Coefficients are processed in
//! fused groups of at most [`SPMPV_MAX_DEPTH`] so memory stays bounded
//! at `depth + 2` full multivectors while each group costs one matrix
//! stream instead of `depth`.

use crate::backend::{self, KernelBackend, KernelKind};
use crate::bcrs::BcrsMatrix;
use crate::instrument;
use crate::multivec::MultiVec;
use crate::BLOCK_DIM;
use std::ops::Range;

/// Upper bound on how many recurrence levels one fused Chebyshev pass
/// computes per matrix stream. Each pass holds `depth + 2` full
/// multivectors, so this bounds workspace while still amortizing the
/// matrix stream over several multiplies.
pub const SPMPV_MAX_DEPTH: usize = 4;

/// Target bytes of matrix stream per chunk — sized so a chunk's blocks
/// and indices sit comfortably in a private L2 slice while `k` powers
/// revisit them.
const CHUNK_TARGET_BYTES: usize = 256 << 10;

/// The level-blocking schedule for one matrix: contiguous block-row
/// chunks whose length is at least the block bandwidth, so each chunk's
/// column reach spans at most one neighbouring chunk.
#[derive(Clone, Debug)]
pub struct PowerPlan {
    /// Chunk `i` covers block rows `bounds[i]..bounds[i + 1]`.
    bounds: Vec<usize>,
    /// Maximum `|row − col|` over stored blocks.
    bandwidth: usize,
}

impl PowerPlan {
    /// Plans chunks for `a` with the default cache target.
    ///
    /// # Panics
    /// When `a` is not square (powers need matching shapes).
    pub fn new(a: &BcrsMatrix) -> Self {
        let nb = a.nb_rows();
        let bytes_per_row = a.stream_bytes().checked_div(nb).unwrap_or(1).max(1);
        Self::with_chunk_rows(a, (CHUNK_TARGET_BYTES / bytes_per_row).max(1))
    }

    /// Plans with an explicit row target per chunk (tests and benches
    /// use this to force multi-chunk schedules on small matrices). The
    /// target is raised to the block bandwidth when narrower.
    pub fn with_chunk_rows(a: &BcrsMatrix, chunk_rows: usize) -> Self {
        assert_eq!(
            a.nb_rows(),
            a.nb_cols(),
            "matrix powers require a square matrix"
        );
        let bandwidth = block_bandwidth(a);
        let step = chunk_rows.max(bandwidth).max(1);
        let nb = a.nb_rows();
        let mut bounds = Vec::with_capacity(nb / step + 2);
        bounds.push(0);
        let mut s = 0;
        while s < nb {
            s = (s + step).min(nb);
            bounds.push(s);
        }
        PowerPlan { bounds, bandwidth }
    }

    /// Number of row chunks (0 for an empty matrix).
    pub fn n_chunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Whether the schedule actually fuses: with a single chunk the
    /// wavefront degenerates to plain sequential sweeps and the matrix
    /// is streamed once per power (it may still be cache-resident —
    /// a single chunk means the whole matrix met the cache target).
    pub fn fused(&self) -> bool {
        self.n_chunks() > 1
    }

    /// The matrix's block bandwidth.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    fn chunk(&self, i: usize) -> Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }
}

/// Maximum `|row − col|` over stored blocks — the column reach that
/// chunk sizing must cover.
fn block_bandwidth(a: &BcrsMatrix) -> usize {
    let mut bw = 0usize;
    for bi in 0..a.nb_rows() {
        let (cols, _) = a.block_row(bi);
        for &c in cols {
            bw = bw.max((c as isize - bi as isize).unsigned_abs());
        }
    }
    bw
}

/// `outs[p − 1] = A^p · x` for `p = 1..=outs.len()`, through the active
/// backend, in one level-blocked wavefront. Bitwise identical (per
/// backend kind) to `outs.len()` sequential [`crate::gspmv_serial`]
/// sweeps.
pub fn spmpv_powers(a: &BcrsMatrix, x: &MultiVec, outs: &mut [MultiVec]) {
    spmpv_powers_impl(backend::active_backend(), a, x, outs);
}

/// [`spmpv_powers`] through an explicitly chosen backend kind.
///
/// # Panics
/// When `kind` is unavailable on this host; gate with
/// [`crate::backend::backend_available`].
pub fn spmpv_powers_with(
    kind: KernelKind,
    a: &BcrsMatrix,
    x: &MultiVec,
    outs: &mut [MultiVec],
) {
    spmpv_powers_impl(require_backend(kind), a, x, outs);
}

/// [`spmpv_powers_with`] over an explicit [`PowerPlan`] — how the
/// oracle (and tests) force a multi-chunk wavefront on matrices too
/// small for the default plan to fuse. Shape checks match
/// [`spmpv_powers`]; the plan must have been built for `a`.
pub fn spmpv_powers_with_plan(
    kind: KernelKind,
    a: &BcrsMatrix,
    plan: &PowerPlan,
    x: &MultiVec,
    outs: &mut [MultiVec],
) {
    let k = outs.len();
    if k == 0 {
        return;
    }
    let m = x.m();
    assert_eq!(x.n(), a.n_cols(), "X row count must equal matrix columns");
    for out in outs.iter() {
        assert_eq!(out.n(), a.n_rows(), "out row count must equal matrix rows");
        assert_eq!(out.m(), m, "out width must match X");
    }
    let b = require_backend(kind);
    let _span = instrument_spmpv(a, m, k, 1, plan, b);
    powers_wavefront(b, a, plan, x, outs);
}

fn require_backend(kind: KernelKind) -> &'static dyn KernelBackend {
    backend::backend_for(kind)
        .expect("requested kernel backend unavailable on this host")
}

fn spmpv_powers_impl(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    x: &MultiVec,
    outs: &mut [MultiVec],
) {
    let k = outs.len();
    if k == 0 {
        return;
    }
    let m = x.m();
    assert_eq!(x.n(), a.n_cols(), "X row count must equal matrix columns");
    for out in outs.iter() {
        assert_eq!(out.n(), a.n_rows(), "out row count must equal matrix rows");
        assert_eq!(out.m(), m, "out width must match X");
    }
    let plan = PowerPlan::new(a);
    // The whole depth runs in one wavefront: one matrix stream.
    let _span = instrument_spmpv(a, m, k, 1, &plan, b);
    powers_wavefront(b, a, &plan, x, outs);
}

/// The anti-diagonal schedule over an explicit plan (tests force
/// multi-chunk plans on small matrices through this).
fn powers_wavefront(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    plan: &PowerPlan,
    x: &MultiVec,
    outs: &mut [MultiVec],
) {
    let m = x.m();
    let k = outs.len();
    let q = plan.n_chunks();
    if q == 0 || k == 0 {
        return;
    }
    for t in 0..q + k - 1 {
        for p in 1..=k {
            let i = t as isize - (p as isize - 1);
            if i < 0 || i >= q as isize {
                continue;
            }
            let rows = plan.chunk(i as usize);
            let win = rows.start * BLOCK_DIM * m..rows.end * BLOCK_DIM * m;
            if p == 1 {
                let y = &mut outs[0].as_mut_slice()[win];
                b.gspmv_rows(a, x.as_slice(), y, m, rows);
            } else {
                let (prev, cur) = outs.split_at_mut(p - 1);
                let y = &mut cur[0].as_mut_slice()[win];
                b.gspmv_rows(a, prev[p - 2].as_slice(), y, m, rows);
            }
        }
    }
}

/// Evaluates the full shifted-Chebyshev sum
/// `y = c_0/2 · z + Σ_{p=1}^{order} c_p · T_p(Ã) z`,
/// `Ã = (A − mid·I)/half`, with `order = coeffs.len() − 1` operator
/// applications fused in level-blocked groups — each group of up to
/// [`SPMPV_MAX_DEPTH`] levels costs about one matrix stream.
pub fn spmpv_chebyshev(
    a: &BcrsMatrix,
    z: &MultiVec,
    mid: f64,
    half: f64,
    coeffs: &[f64],
    y: &mut MultiVec,
) {
    spmpv_chebyshev_impl(backend::active_backend(), a, z, mid, half, coeffs, y);
}

/// [`spmpv_chebyshev`] through an explicitly chosen backend kind
/// (panics when unavailable, like [`spmpv_powers_with`]).
pub fn spmpv_chebyshev_with(
    kind: KernelKind,
    a: &BcrsMatrix,
    z: &MultiVec,
    mid: f64,
    half: f64,
    coeffs: &[f64],
    y: &mut MultiVec,
) {
    spmpv_chebyshev_impl(require_backend(kind), a, z, mid, half, coeffs, y);
}

fn spmpv_chebyshev_impl(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    z: &MultiVec,
    mid: f64,
    half: f64,
    coeffs: &[f64],
    y: &mut MultiVec,
) {
    assert!(!coeffs.is_empty(), "need at least the constant coefficient");
    assert_eq!(a.nb_rows(), a.nb_cols(), "Chebyshev needs a square matrix");
    assert_eq!(z.n(), a.n_cols(), "Z row count must equal matrix columns");
    assert_eq!(z.shape(), y.shape(), "Y must match Z");
    let m = z.m();
    let half_c0 = 0.5 * coeffs[0];
    for (yv, zv) in y.as_mut_slice().iter_mut().zip(z.as_slice()) {
        *yv = half_c0 * zv;
    }
    let order = coeffs.len() - 1;
    if order == 0 {
        return;
    }
    let plan = PowerPlan::new(a);
    let depth = order.min(SPMPV_MAX_DEPTH);
    // One matrix stream per fused group of `depth` levels.
    let passes = order.div_ceil(depth) as u64;
    let _span = instrument_spmpv(a, m, order, passes, &plan, b);
    chebyshev_wavefront(b, a, &plan, z, mid, half, coeffs, y);
}

/// The grouped recurrence over an explicit plan (tests force
/// multi-chunk plans on small matrices through this). `y` must already
/// hold the `c_0/2 · z` term.
#[allow(clippy::too_many_arguments)]
fn chebyshev_wavefront(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    plan: &PowerPlan,
    z: &MultiVec,
    mid: f64,
    half: f64,
    coeffs: &[f64],
    y: &mut MultiVec,
) {
    let order = coeffs.len() - 1;
    let m = z.m();
    if plan.n_chunks() == 0 || order == 0 {
        return;
    }
    let n = a.n_rows();
    let depth = order.min(SPMPV_MAX_DEPTH);
    let mut levels: Vec<MultiVec> =
        (0..depth).map(|_| MultiVec::zeros(n, m)).collect();
    // `u_{p0}` and `u_{p0 − 1}` carried between groups; meaningless
    // until the first rotation (the first group reads `z` directly).
    let mut prev1 = MultiVec::zeros(n, m);
    let mut prev2 = MultiVec::zeros(n, m);
    let mut p0 = 0usize;
    while p0 < order {
        let d = depth.min(order - p0);
        let entry0 = (p0 > 0).then(|| prev2.as_slice());
        let entry1 = if p0 == 0 { z.as_slice() } else { prev1.as_slice() };
        cheb_pass(
            b,
            a,
            plan,
            m,
            entry0,
            entry1,
            &mut levels[..d],
            &coeffs[p0 + 1..p0 + 1 + d],
            mid,
            half,
            y,
        );
        p0 += d;
        if p0 < order {
            // Carry the group's top two levels into the next group.
            if d >= 2 {
                std::mem::swap(&mut prev2, &mut levels[d - 2]);
            } else {
                std::mem::swap(&mut prev2, &mut prev1);
            }
            std::mem::swap(&mut prev1, &mut levels[d - 1]);
        }
    }
}

/// One fused group: computes levels `p0 + 1 ..= p0 + d` of the shifted
/// recurrence into `levels[..d]` along the anti-diagonal wavefront,
/// accumulating `y += c_p · u_p` chunk by chunk as each level lands
/// (per element the accumulation stays in ascending-`p` order, so the
/// result is independent of the chunking).
#[allow(clippy::too_many_arguments)]
fn cheb_pass(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    plan: &PowerPlan,
    m: usize,
    entry0: Option<&[f64]>,
    entry1: &[f64],
    levels: &mut [MultiVec],
    coeffs: &[f64],
    mid: f64,
    half: f64,
    y: &mut MultiVec,
) {
    let d = levels.len();
    let q = plan.n_chunks();
    for t in 0..q + d - 1 {
        for j in 1..=d {
            let i = t as isize - (j as isize - 1);
            if i < 0 || i >= q as isize {
                continue;
            }
            let rows = plan.chunk(i as usize);
            let win = rows.start * BLOCK_DIM * m..rows.end * BLOCK_DIM * m;
            let (done, rest) = levels.split_at_mut(j - 1);
            let cur = if j == 1 { entry1 } else { done[j - 2].as_slice() };
            let prev = match j {
                1 => entry0,
                2 => Some(entry1),
                _ => Some(done[j - 3].as_slice()),
            };
            b.cheb_shifted_rows(
                a,
                cur,
                prev,
                &mut rest[0].as_mut_slice()[win.clone()],
                mid,
                half,
                m,
                rows,
            );
            let c = coeffs[j - 1];
            let u = &rest[0].as_slice()[win.clone()];
            for (yv, uv) in y.as_mut_slice()[win].iter_mut().zip(u) {
                *yv += c * *uv;
            }
        }
    }
}

/// Counts one SpMPV call: `depth` fused multiplies' worth of flops and
/// vector traffic, but the matrix stream charged once per wavefront
/// pass (the minimum-traffic accounting of `instrument.rs`; the
/// degenerate single-chunk schedule charges one stream per multiply).
/// Also bumps the per-depth counter `spmpv/depth{depth}/calls`.
fn instrument_spmpv(
    a: &BcrsMatrix,
    m: usize,
    depth: usize,
    passes: u64,
    plan: &PowerPlan,
    b: &dyn KernelBackend,
) -> crate::instrument::KernelGuard {
    let nb = a.nb_rows() as u64;
    let nnzb = a.nnz_blocks() as u64;
    let stream = 4 * nb + 76 * nnzb;
    let streams = if plan.fused() { passes } else { depth as u64 };
    instrument::record_kernel_call(
        "spmpv",
        m,
        nb * depth as u64,
        nnzb * depth as u64,
        streams * stream,
    );
    instrument::record_backend(b.name());
    if mrhs_telemetry::enabled() {
        mrhs_telemetry::counter_add(&format!("spmpv/depth{depth}/calls"), 1);
        mrhs_telemetry::counter_add(
            "spmpv/fused_multiplies",
            if plan.fused() { depth as u64 } else { 0 },
        );
    }
    instrument::kernel_span("spmpv", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::backend_available;
    use crate::block::Block3;
    use crate::gspmv::gspmv_serial_with;
    use crate::triplet::BlockTripletBuilder;

    fn banded(nb: usize, band: usize, seed: u64) -> BcrsMatrix {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0 + band as f64));
            for d in 1..=band {
                if bi + d < nb {
                    let mut blk = Block3::ZERO;
                    for v in blk.0.iter_mut() {
                        *v = rng() * 0.4;
                    }
                    t.add_symmetric_pair(bi, bi + d, blk);
                }
            }
        }
        t.build()
    }

    fn pseudo(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut v = MultiVec::zeros(n, m);
        for x in v.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *x = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        v
    }

    #[test]
    fn plan_chunks_cover_rows_and_respect_bandwidth() {
        let a = banded(40, 3, 9);
        let plan = PowerPlan::with_chunk_rows(&a, 2);
        assert_eq!(plan.bandwidth(), 3);
        assert!(plan.fused());
        let mut next = 0;
        for i in 0..plan.n_chunks() {
            let c = plan.chunk(i);
            assert_eq!(c.start, next);
            assert!(c.end - c.start >= plan.bandwidth() || c.end == 40);
            next = c.end;
        }
        assert_eq!(next, 40);
    }

    #[test]
    fn powers_bitwise_match_repeated_gspmv_per_kind() {
        let a = banded(37, 4, 1234);
        let n = a.n_rows();
        for kind in KernelKind::ALL {
            if !backend_available(kind) {
                continue;
            }
            for &m in &[1usize, 3, 8] {
                let x = pseudo(n, m, 77);
                for k in 1..=4usize {
                    let mut outs: Vec<MultiVec> =
                        (0..k).map(|_| MultiVec::zeros(n, m)).collect();
                    // Force a genuinely multi-chunk wavefront.
                    let plan = PowerPlan::with_chunk_rows(&a, 5);
                    assert!(plan.fused());
                    powers_wavefront(
                        require_backend(kind),
                        &a,
                        &plan,
                        &x,
                        &mut outs,
                    );
                    let mut want = x.clone();
                    for out in &outs {
                        let mut next = MultiVec::zeros(n, m);
                        gspmv_serial_with(kind, &a, &want, &mut next);
                        assert_eq!(
                            next.as_slice(),
                            out.as_slice(),
                            "kind={kind:?} m={m} k={k}"
                        );
                        want = next;
                    }
                }
            }
        }
    }

    #[test]
    fn single_chunk_plan_degenerates_to_sequential_sweeps() {
        let a = banded(6, 2, 5);
        let plan = PowerPlan::with_chunk_rows(&a, 100);
        assert!(!plan.fused());
        let x = pseudo(a.n_rows(), 2, 3);
        let mut outs =
            vec![MultiVec::zeros(a.n_rows(), 2), MultiVec::zeros(a.n_rows(), 2)];
        spmpv_powers(&a, &x, &mut outs);
        // The active backend may be SIMD; compare against the active
        // kind's own sweeps for bitwise identity.
        let mut a1 = MultiVec::zeros(a.n_rows(), 2);
        crate::gspmv::gspmv_serial(&a, &x, &mut a1);
        assert_eq!(outs[0].as_slice(), a1.as_slice());
        let mut a2 = MultiVec::zeros(a.n_rows(), 2);
        crate::gspmv::gspmv_serial(&a, &a1, &mut a2);
        assert_eq!(outs[1].as_slice(), a2.as_slice());
    }

    #[test]
    fn chebyshev_fusion_matches_reference_recurrence() {
        let a = banded(30, 2, 88);
        let n = a.n_rows();
        let (mid, half) = (5.0, 2.0);
        for &m in &[1usize, 4] {
            for order in [1usize, 2, 3, 4, 5, 9] {
                let coeffs: Vec<f64> =
                    (0..=order).map(|p| 1.0 / (1.0 + p as f64)).collect();
                let z = pseudo(n, m, 17);
                let mut y = MultiVec::zeros(n, m);
                spmpv_chebyshev(&a, &z, mid, half, &coeffs, &mut y);

                // Reference: plain sequential shifted recurrence.
                let inv = 1.0 / half;
                let apply_shift = |x: &MultiVec| {
                    let mut t = MultiVec::zeros(n, m);
                    crate::gspmv::gspmv_serial(&a, x, &mut t);
                    for (tv, xv) in t.as_mut_slice().iter_mut().zip(x.as_slice()) {
                        *tv = (*tv - mid * xv) * inv;
                    }
                    t
                };
                let mut want = MultiVec::zeros(n, m);
                for (wv, zv) in want.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    *wv = 0.5 * coeffs[0] * zv;
                }
                let mut u_prev = z.clone();
                let mut u_cur = apply_shift(&z);
                for p in 1..=order {
                    for (wv, uv) in
                        want.as_mut_slice().iter_mut().zip(u_cur.as_slice())
                    {
                        *wv += coeffs[p] * uv;
                    }
                    if p == order {
                        break;
                    }
                    let mut u_next = apply_shift(&u_cur);
                    for (nv, pv) in
                        u_next.as_mut_slice().iter_mut().zip(u_prev.as_slice())
                    {
                        *nv = 2.0 * *nv - pv;
                    }
                    u_prev = u_cur;
                    u_cur = u_next;
                }
                for (g, w) in y.as_slice().iter().zip(want.as_slice()) {
                    assert!(
                        (g - w).abs() <= 1e-11 * w.abs().max(1.0),
                        "m={m} order={order}: {g} vs {w}"
                    );
                }

                // Forced multi-chunk plan: same sum, chunking-blind.
                let plan = PowerPlan::with_chunk_rows(&a, 4);
                assert!(plan.fused());
                let mut yc = MultiVec::zeros(n, m);
                for (yv, zv) in yc.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    *yv = 0.5 * coeffs[0] * zv;
                }
                chebyshev_wavefront(
                    backend::active_backend(),
                    &a,
                    &plan,
                    &z,
                    mid,
                    half,
                    &coeffs,
                    &mut yc,
                );
                for (g, w) in yc.as_slice().iter().zip(want.as_slice()) {
                    assert!(
                        (g - w).abs() <= 1e-11 * w.abs().max(1.0),
                        "chunked m={m} order={order}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_matrices_are_handled() {
        let a = BlockTripletBuilder::square(1).build();
        let x = MultiVec::zeros(3, 2);
        let mut outs = vec![MultiVec::zeros(3, 2); 3];
        spmpv_powers(&a, &x, &mut outs);
        for out in &outs {
            assert_eq!(out.max_abs(), 0.0);
        }
        let mut y = MultiVec::zeros(3, 2);
        spmpv_chebyshev(&a, &x, 1.0, 1.0, &[0.5, 0.25], &mut y);
        assert_eq!(y.max_abs(), 0.0);
    }
}
