//! Explicit-SIMD row kernels behind a thin vector wrapper.
//!
//! The kernel bodies are written once, generic over a minimal [`Vf64`]
//! vector interface, and monomorphized per ISA inside concrete
//! `#[target_feature]` wrappers — the wrapper provides the feature
//! context, `#[inline(always)]` on the generic bodies guarantees the
//! intrinsics land inside it. This is the runtime analogue of the
//! paper's code generator: one kernel source, one binary, the widest
//! ISA the *running* CPU offers.
//!
//! **Register tiling.** For each block row the `m` columns are
//! processed in chunks of up to four vectors (`NV = 4 → 2 → 1`, then a
//! scalar tail), and the 3×`NV·LANES` accumulator tile stays in
//! registers across the entire row — every stored block contributes
//! nine broadcast-FMAs per vector without touching memory for partial
//! sums. A row's blocks are re-read once per chunk; they sit in L1 by
//! the second pass, and the expensive stream (the matrix at large `m`,
//! per Eq. 8) is only read for the first chunk.
//!
//! **Determinism.** Per output element the accumulation order is the
//! stored block order — identical across chunk decompositions, so the
//! serial/auto/chunked contracts of the scalar kernels carry over
//! unchanged. The FMA contraction rounds differently from the scalar
//! kernels' mul-then-add, so *cross-backend* agreement is tolerance
//! (ULP) level, which the oracle suite checks explicitly.

use crate::backend::Isa;
use crate::block::Block3;
use crate::gspmv::BlockGet;
use crate::symmetric::SymmetricBcrs;
use std::ops::Range;

/// Lanes of the narrowest vector of `isa` — below this width a SIMD
/// kernel would be pure scalar tail, so callers delegate to the
/// monomorphized backend instead.
pub(crate) fn min_vector_width(isa: Isa) -> usize {
    match isa {
        Isa::Avx512 => 8,
        Isa::Avx2 => 4,
        Isa::Neon => 2,
        Isa::Portable => usize::MAX,
    }
}

/// The minimal f64 vector interface the kernel bodies are generic
/// over. All methods are `unsafe`: callers must hold the ISA's target
/// features (guaranteed by the `#[target_feature]` wrappers below).
trait Vf64: Copy {
    const LANES: usize;
    unsafe fn zero() -> Self;
    unsafe fn splat(v: f64) -> Self;
    unsafe fn load(p: *const f64) -> Self;
    unsafe fn store(self, p: *mut f64);
    /// Fused `self + a·b`.
    unsafe fn fma(self, a: Self, b: Self) -> Self;
    /// Fused `self − a·b`.
    unsafe fn fnma(self, a: Self, b: Self) -> Self;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Vf64;
    use core::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub struct V4(__m256d);

    impl Vf64 for V4 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn zero() -> Self {
            V4(_mm256_setzero_pd())
        }
        #[inline(always)]
        unsafe fn splat(v: f64) -> Self {
            V4(_mm256_set1_pd(v))
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V4(_mm256_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn fma(self, a: Self, b: Self) -> Self {
            V4(_mm256_fmadd_pd(a.0, b.0, self.0))
        }
        #[inline(always)]
        unsafe fn fnma(self, a: Self, b: Self) -> Self {
            V4(_mm256_fnmadd_pd(a.0, b.0, self.0))
        }
    }

    #[derive(Clone, Copy)]
    pub struct V8(__m512d);

    impl Vf64 for V8 {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn zero() -> Self {
            V8(_mm512_setzero_pd())
        }
        #[inline(always)]
        unsafe fn splat(v: f64) -> Self {
            V8(_mm512_set1_pd(v))
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V8(_mm512_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn fma(self, a: Self, b: Self) -> Self {
            V8(_mm512_fmadd_pd(a.0, b.0, self.0))
        }
        #[inline(always)]
        unsafe fn fnma(self, a: Self, b: Self) -> Self {
            V8(_mm512_fnmadd_pd(a.0, b.0, self.0))
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::Vf64;
    use core::arch::aarch64::*;

    #[derive(Clone, Copy)]
    pub struct V2(float64x2_t);

    impl Vf64 for V2 {
        const LANES: usize = 2;
        #[inline(always)]
        unsafe fn zero() -> Self {
            V2(vdupq_n_f64(0.0))
        }
        #[inline(always)]
        unsafe fn splat(v: f64) -> Self {
            V2(vdupq_n_f64(v))
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V2(vld1q_f64(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            vst1q_f64(p, self.0)
        }
        #[inline(always)]
        unsafe fn fma(self, a: Self, b: Self) -> Self {
            V2(vfmaq_f64(self.0, a.0, b.0))
        }
        #[inline(always)]
        unsafe fn fnma(self, a: Self, b: Self) -> Self {
            V2(vfmsq_f64(self.0, a.0, b.0))
        }
    }
}

// ---------------------------------------------------------------------
// Generic kernel bodies (ISA-independent, always inlined into the
// per-ISA `#[target_feature]` wrappers).
// ---------------------------------------------------------------------

/// `acc (3×NV vectors) += B · x_slab[off..off+NV·LANES]` for one 3×3
/// block. Nine broadcasts, `3·NV` x-loads, `9·NV` FMAs; LLVM CSEs the
/// broadcasts across the unrolled `v` loop when registers allow.
#[inline(always)]
unsafe fn apply_fwd<V: Vf64, const NV: usize>(
    bp: *const f64,
    xb: *const f64,
    m: usize,
    acc: &mut [[V; NV]; 3],
) {
    for v in 0..NV {
        let x0 = V::load(xb.add(v * V::LANES));
        let x1 = V::load(xb.add(m + v * V::LANES));
        let x2 = V::load(xb.add(2 * m + v * V::LANES));
        for i in 0..3 {
            acc[i][v] = acc[i][v]
                .fma(V::splat(*bp.add(3 * i)), x0)
                .fma(V::splat(*bp.add(3 * i + 1)), x1)
                .fma(V::splat(*bp.add(3 * i + 2)), x2);
        }
    }
}

/// One register-tiled chunk (`NV` vectors wide, lane offset `off`) of a
/// full-storage block row: accumulate every stored block, store once.
#[inline(always)]
unsafe fn row_chunk<V: Vf64, const NV: usize, B: BlockGet>(
    ks: Range<usize>,
    col_idx: &[u32],
    blocks: B,
    x: *const f64,
    m: usize,
    off: usize,
    yrow: *mut f64,
) {
    let mut acc = [[V::zero(); NV]; 3];
    for k in ks {
        let c = *col_idx.get_unchecked(k) as usize;
        let bp = blocks.block(k).0.as_ptr();
        apply_fwd::<V, NV>(bp, x.add(c * 3 * m + off), m, &mut acc);
    }
    for i in 0..3 {
        for v in 0..NV {
            acc[i][v].store(yrow.add(i * m + off + v * V::LANES));
        }
    }
}

/// Scalar tail for the final `m − off` columns of a full-storage row.
#[inline(always)]
unsafe fn row_tail<B: BlockGet>(
    ks: Range<usize>,
    col_idx: &[u32],
    blocks: B,
    x: *const f64,
    m: usize,
    off: usize,
    yrow: *mut f64,
) {
    for j in off..m {
        let (mut a0, mut a1, mut a2) = (0.0f64, 0.0f64, 0.0f64);
        for k in ks.clone() {
            let c = *col_idx.get_unchecked(k) as usize;
            let b = &blocks.block(k).0;
            let xb = x.add(c * 3 * m + j);
            let (x0, x1, x2) = (*xb, *xb.add(m), *xb.add(2 * m));
            a0 += b[0] * x0 + b[1] * x1 + b[2] * x2;
            a1 += b[3] * x0 + b[4] * x1 + b[5] * x2;
            a2 += b[6] * x0 + b[7] * x1 + b[8] * x2;
        }
        *yrow.add(j) = a0;
        *yrow.add(m + j) = a1;
        *yrow.add(2 * m + j) = a2;
    }
}

/// Full-storage GSPMV row loop: chunk decomposition `4·L / 2·L / L`
/// vectors plus scalar tail, accumulators in registers per chunk.
#[inline(always)]
unsafe fn rows_vf<V: Vf64, B: BlockGet>(
    row_ptr: &[usize],
    col_idx: &[u32],
    blocks: B,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    rows: Range<usize>,
) {
    let y_base = rows.start * 3 * m;
    let xp = x.as_ptr();
    for bi in rows {
        let ks = row_ptr[bi]..row_ptr[bi + 1];
        let yrow = y.as_mut_ptr().add(bi * 3 * m - y_base);
        let mut off = 0;
        while off + 4 * V::LANES <= m {
            row_chunk::<V, 4, B>(ks.clone(), col_idx, blocks, xp, m, off, yrow);
            off += 4 * V::LANES;
        }
        if off + 2 * V::LANES <= m {
            row_chunk::<V, 2, B>(ks.clone(), col_idx, blocks, xp, m, off, yrow);
            off += 2 * V::LANES;
        }
        if off + V::LANES <= m {
            row_chunk::<V, 1, B>(ks.clone(), col_idx, blocks, xp, m, off, yrow);
            off += V::LANES;
        }
        if off < m {
            row_tail::<B>(ks, col_idx, blocks, xp, m, off, yrow);
        }
    }
}

/// One chunk of a symmetric pass-1 row: diagonal plus forward upper
/// blocks, overwriting the window row.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn sym_row_chunk<V: Vf64, const NV: usize>(
    dp: *const f64,
    ks: Range<usize>,
    col_idx: &[u32],
    blocks: &[Block3],
    x: *const f64,
    bi: usize,
    m: usize,
    off: usize,
    wrow: *mut f64,
) {
    let mut acc = [[V::zero(); NV]; 3];
    apply_fwd::<V, NV>(dp, x.add(bi * 3 * m + off), m, &mut acc);
    for k in ks {
        let c = *col_idx.get_unchecked(k) as usize;
        let bp = blocks.get_unchecked(k).0.as_ptr();
        apply_fwd::<V, NV>(bp, x.add(c * 3 * m + off), m, &mut acc);
    }
    for i in 0..3 {
        for v in 0..NV {
            acc[i][v].store(wrow.add(i * m + off + v * V::LANES));
        }
    }
}

/// Scalar tail of a symmetric pass-1 row.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn sym_row_tail(
    dp: *const f64,
    ks: Range<usize>,
    col_idx: &[u32],
    blocks: &[Block3],
    x: *const f64,
    bi: usize,
    m: usize,
    off: usize,
    wrow: *mut f64,
) {
    for j in off..m {
        let xb = x.add(bi * 3 * m + j);
        let (x0, x1, x2) = (*xb, *xb.add(m), *xb.add(2 * m));
        let mut a = [
            *dp * x0 + *dp.add(1) * x1 + *dp.add(2) * x2,
            *dp.add(3) * x0 + *dp.add(4) * x1 + *dp.add(5) * x2,
            *dp.add(6) * x0 + *dp.add(7) * x1 + *dp.add(8) * x2,
        ];
        for k in ks.clone() {
            let c = *col_idx.get_unchecked(k) as usize;
            let b = &blocks.get_unchecked(k).0;
            let xb = x.add(c * 3 * m + j);
            let (x0, x1, x2) = (*xb, *xb.add(m), *xb.add(2 * m));
            a[0] += b[0] * x0 + b[1] * x1 + b[2] * x2;
            a[1] += b[3] * x0 + b[4] * x1 + b[5] * x2;
            a[2] += b[6] * x0 + b[7] * x1 + b[8] * x2;
        }
        for (i, av) in a.iter().enumerate() {
            *wrow.add(i * m + j) = *av;
        }
    }
}

/// `y (3×m) += Bᵀ · xi (3×m)` — the symmetric pass-2 scatter term,
/// vector chunks with a scalar tail, read-modify-write on `y`.
#[inline(always)]
unsafe fn accumulate_t<V: Vf64>(
    bp: *const f64,
    xi: *const f64,
    y: *mut f64,
    m: usize,
) {
    let mut j = 0;
    while j + V::LANES <= m {
        let x0 = V::load(xi.add(j));
        let x1 = V::load(xi.add(m + j));
        let x2 = V::load(xi.add(2 * m + j));
        for i in 0..3 {
            // (Bᵀ)_{i,c} = B_{c,i} = bp[3c + i]
            V::load(y.add(i * m + j))
                .fma(V::splat(*bp.add(i)), x0)
                .fma(V::splat(*bp.add(3 + i)), x1)
                .fma(V::splat(*bp.add(6 + i)), x2)
                .store(y.add(i * m + j));
        }
        j += V::LANES;
    }
    while j < m {
        let (x0, x1, x2) = (*xi.add(j), *xi.add(m + j), *xi.add(2 * m + j));
        for i in 0..3 {
            *y.add(i * m + j) +=
                *bp.add(i) * x0 + *bp.add(3 + i) * x1 + *bp.add(6 + i) * x2;
        }
        j += 1;
    }
}

/// Symmetric two-phase row kernel, same window/slab contract as the
/// scalar `sym_rows_fixed`.
#[inline(always)]
unsafe fn sym_rows_vf<V: Vf64>(
    s: &SymmetricBcrs,
    x: &[f64],
    window: &mut [f64],
    slab: &mut [f64],
    slab_base: usize,
    m: usize,
    rows: Range<usize>,
) {
    let (row_ptr, col_idx, blocks) = s.upper_parts();
    let diag = s.diag_blocks();
    let y_base = rows.start * 3 * m;
    let xp = x.as_ptr();
    // Pass 1 — overwrite window rows with diagonal + forward terms.
    for bi in rows.clone() {
        let ks = row_ptr[bi]..row_ptr[bi + 1];
        let wrow = window.as_mut_ptr().add(bi * 3 * m - y_base);
        let dp = diag[bi].0.as_ptr();
        let mut off = 0;
        while off + 4 * V::LANES <= m {
            sym_row_chunk::<V, 4>(
                dp,
                ks.clone(),
                col_idx,
                blocks,
                xp,
                bi,
                m,
                off,
                wrow,
            );
            off += 4 * V::LANES;
        }
        if off + 2 * V::LANES <= m {
            sym_row_chunk::<V, 2>(
                dp,
                ks.clone(),
                col_idx,
                blocks,
                xp,
                bi,
                m,
                off,
                wrow,
            );
            off += 2 * V::LANES;
        }
        if off + V::LANES <= m {
            sym_row_chunk::<V, 1>(
                dp,
                ks.clone(),
                col_idx,
                blocks,
                xp,
                bi,
                m,
                off,
                wrow,
            );
            off += V::LANES;
        }
        if off < m {
            sym_row_tail(dp, ks, col_idx, blocks, xp, bi, m, off, wrow);
        }
    }
    // Pass 2 — scatter transpose terms into the window or the slab.
    for bi in rows.clone() {
        let xi = xp.add(bi * 3 * m);
        for k in row_ptr[bi]..row_ptr[bi + 1] {
            let bj = col_idx[k] as usize;
            let bp = blocks[k].0.as_ptr();
            let target: *mut f64 = if bj < rows.end {
                window.as_mut_ptr().add(bj * 3 * m - y_base)
            } else {
                slab.as_mut_ptr().add((bj - slab_base) * 3 * m)
            };
            accumulate_t::<V>(bp, xi, target, m);
        }
    }
}

// ---------------------------------------------------------------------
// Dense MultiVec kernel bodies (Gram, X += P·C, P ← R + P·C, fused
// sub-mul-gram) — row-streamed m-wide broadcast-FMA loops.
// ---------------------------------------------------------------------

/// `g[i·m..] += s · src` over vector chunks with a scalar tail.
#[inline(always)]
unsafe fn axpy_row<V: Vf64>(dst: *mut f64, s: f64, src: *const f64, m: usize) {
    let sv = V::splat(s);
    let mut j = 0;
    while j + V::LANES <= m {
        V::load(dst.add(j)).fma(sv, V::load(src.add(j))).store(dst.add(j));
        j += V::LANES;
    }
    while j < m {
        *dst.add(j) += s * *src.add(j);
        j += 1;
    }
}

/// Gram matrix `aᵀ·b` for equal widths `m`; `a`, `b` are `n×m`
/// row-major.
#[inline(always)]
unsafe fn gram_vf<V: Vf64>(a: &[f64], b: &[f64], m: usize) -> Vec<f64> {
    let mut g = vec![0.0f64; m * m];
    let gp = g.as_mut_ptr();
    let n = a.len() / m;
    for r in 0..n {
        let srow = a.as_ptr().add(r * m);
        let orow = b.as_ptr().add(r * m);
        for i in 0..m {
            axpy_row::<V>(gp.add(i * m), *srow.add(i), orow, m);
        }
    }
    g
}

/// `x += p · C` with `C` row-major `m×m`.
#[inline(always)]
unsafe fn add_mul_vf<V: Vf64>(x: &mut [f64], p: &[f64], c: &[f64], m: usize) {
    let n = p.len() / m;
    let cp = c.as_ptr();
    for r in 0..n {
        let drow = x.as_mut_ptr().add(r * m);
        let prow = p.as_ptr().add(r * m);
        let mut j = 0;
        while j + V::LANES <= m {
            let mut acc = V::load(drow.add(j));
            for k in 0..m {
                acc = acc.fma(V::splat(*prow.add(k)), V::load(cp.add(k * m + j)));
            }
            acc.store(drow.add(j));
            j += V::LANES;
        }
        while j < m {
            let mut acc = *drow.add(j);
            for k in 0..m {
                acc += *prow.add(k) * *cp.add(k * m + j);
            }
            *drow.add(j) = acc;
            j += 1;
        }
    }
}

/// `p ← r + p · C`; the coefficients come from the *original* `p` row,
/// staged through `scratch` (length ≥ m) before the row is overwritten.
#[inline(always)]
unsafe fn assign_add_mul_vf<V: Vf64>(
    p: &mut [f64],
    r: &[f64],
    c: &[f64],
    m: usize,
    scratch: &mut [f64],
) {
    let n = r.len() / m;
    let cp = c.as_ptr();
    for row in 0..n {
        let drow = p.as_mut_ptr().add(row * m);
        let rrow = r.as_ptr().add(row * m);
        std::ptr::copy_nonoverlapping(drow, scratch.as_mut_ptr(), m);
        let s = scratch.as_ptr();
        let mut j = 0;
        while j + V::LANES <= m {
            let mut acc = V::load(rrow.add(j));
            for k in 0..m {
                acc = acc.fma(V::splat(*s.add(k)), V::load(cp.add(k * m + j)));
            }
            acc.store(drow.add(j));
            j += V::LANES;
        }
        while j < m {
            let mut acc = *rrow.add(j);
            for k in 0..m {
                acc += *s.add(k) * *cp.add(k * m + j);
            }
            *drow.add(j) = acc;
            j += 1;
        }
    }
}

/// Fused `r ← r − q·C; G = rᵀ·r` in one pass over the rows.
#[inline(always)]
unsafe fn sub_mul_gram_vf<V: Vf64>(
    rm: &mut [f64],
    q: &[f64],
    c: &[f64],
    m: usize,
) -> Vec<f64> {
    let n = q.len() / m;
    let mut g = vec![0.0f64; m * m];
    let gp = g.as_mut_ptr();
    let cp = c.as_ptr();
    for row in 0..n {
        let drow = rm.as_mut_ptr().add(row * m);
        let qrow = q.as_ptr().add(row * m);
        let mut j = 0;
        while j + V::LANES <= m {
            let mut acc = V::load(drow.add(j));
            for k in 0..m {
                acc = acc.fnma(V::splat(*qrow.add(k)), V::load(cp.add(k * m + j)));
            }
            acc.store(drow.add(j));
            j += V::LANES;
        }
        while j < m {
            let mut acc = *drow.add(j);
            for k in 0..m {
                acc -= *qrow.add(k) * *cp.add(k * m + j);
            }
            *drow.add(j) = acc;
            j += 1;
        }
        for i in 0..m {
            axpy_row::<V>(gp.add(i * m), *drow.add(i), drow, m);
        }
    }
    g
}

// ---------------------------------------------------------------------
// Concrete per-ISA wrappers. `#[target_feature]` provides the feature
// context the inlined generic bodies compile against.
// ---------------------------------------------------------------------

macro_rules! isa_wrappers {
    ($vec:ty, $mod_name:ident $(, $feat:literal)?) => {
        mod $mod_name {
            use super::*;

            $(#[target_feature(enable = $feat)])?
            pub unsafe fn gspmv_rows<B: BlockGet>(
                row_ptr: &[usize],
                col_idx: &[u32],
                blocks: B,
                x: &[f64],
                y: &mut [f64],
                m: usize,
                rows: Range<usize>,
            ) {
                rows_vf::<$vec, B>(row_ptr, col_idx, blocks, x, y, m, rows)
            }

            $(#[target_feature(enable = $feat)])?
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn sym_rows(
                s: &SymmetricBcrs,
                x: &[f64],
                window: &mut [f64],
                slab: &mut [f64],
                slab_base: usize,
                m: usize,
                rows: Range<usize>,
            ) {
                sym_rows_vf::<$vec>(s, x, window, slab, slab_base, m, rows)
            }

            $(#[target_feature(enable = $feat)])?
            pub unsafe fn gram(a: &[f64], b: &[f64], m: usize) -> Vec<f64> {
                gram_vf::<$vec>(a, b, m)
            }

            $(#[target_feature(enable = $feat)])?
            pub unsafe fn add_mul(x: &mut [f64], p: &[f64], c: &[f64], m: usize) {
                add_mul_vf::<$vec>(x, p, c, m)
            }

            $(#[target_feature(enable = $feat)])?
            pub unsafe fn assign_add_mul(
                p: &mut [f64],
                r: &[f64],
                c: &[f64],
                m: usize,
                scratch: &mut [f64],
            ) {
                assign_add_mul_vf::<$vec>(p, r, c, m, scratch)
            }

            $(#[target_feature(enable = $feat)])?
            pub unsafe fn sub_mul_gram(
                rm: &mut [f64],
                q: &[f64],
                c: &[f64],
                m: usize,
            ) -> Vec<f64> {
                sub_mul_gram_vf::<$vec>(rm, q, c, m)
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
isa_wrappers!(x86::V4, avx2, "avx2,fma");
#[cfg(target_arch = "x86_64")]
isa_wrappers!(x86::V8, avx512, "avx512f");
#[cfg(target_arch = "aarch64")]
isa_wrappers!(arm::V2, neon);

// ---------------------------------------------------------------------
// Safe dispatchers. Safety: `isa` comes from `backend::detect_isa`
// (runtime feature detection), so the target features are present.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn gspmv_rows<B: BlockGet>(
    isa: Isa,
    row_ptr: &[usize],
    col_idx: &[u32],
    blocks: B,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    rows: Range<usize>,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            avx512::gspmv_rows(row_ptr, col_idx, blocks, x, y, m, rows)
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            avx2::gspmv_rows(row_ptr, col_idx, blocks, x, y, m, rows)
        },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe {
            neon::gspmv_rows(row_ptr, col_idx, blocks, x, y, m, rows)
        },
        _ => crate::gspmv::dispatch_rows_scalar(
            row_ptr, col_idx, blocks, x, y, m, rows,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn sym_rows(
    isa: Isa,
    s: &SymmetricBcrs,
    x: &[f64],
    window: &mut [f64],
    slab: &mut [f64],
    slab_base: usize,
    m: usize,
    rows: Range<usize>,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            avx512::sym_rows(s, x, window, slab, slab_base, m, rows)
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            avx2::sym_rows(s, x, window, slab, slab_base, m, rows)
        },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe {
            neon::sym_rows(s, x, window, slab, slab_base, m, rows)
        },
        _ => crate::symmetric::dispatch_sym_rows_scalar(
            s, x, window, slab, slab_base, m, rows,
        ),
    }
}

pub(crate) fn gram(isa: Isa, a: &[f64], b: &[f64], m: usize) -> Vec<f64> {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::gram(a, b, m) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::gram(a, b, m) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::gram(a, b, m) },
        _ => unreachable!("SIMD dense kernel dispatched without a vector ISA"),
    }
}

pub(crate) fn add_mul(isa: Isa, x: &mut [f64], p: &[f64], c: &[f64], m: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::add_mul(x, p, c, m) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::add_mul(x, p, c, m) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::add_mul(x, p, c, m) },
        _ => unreachable!("SIMD dense kernel dispatched without a vector ISA"),
    }
}

pub(crate) fn assign_add_mul(
    isa: Isa,
    p: &mut [f64],
    r: &[f64],
    c: &[f64],
    m: usize,
) {
    let mut scratch = vec![0.0f64; m];
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::assign_add_mul(p, r, c, m, &mut scratch) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::assign_add_mul(p, r, c, m, &mut scratch) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::assign_add_mul(p, r, c, m, &mut scratch) },
        _ => unreachable!("SIMD dense kernel dispatched without a vector ISA"),
    }
}

pub(crate) fn sub_mul_gram(
    isa: Isa,
    rm: &mut [f64],
    q: &[f64],
    c: &[f64],
    m: usize,
) -> Vec<f64> {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::sub_mul_gram(rm, q, c, m) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::sub_mul_gram(rm, q, c, m) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::sub_mul_gram(rm, q, c, m) },
        _ => unreachable!("SIMD dense kernel dispatched without a vector ISA"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{backend_for, detect_isa, KernelKind};
    use crate::triplet::BlockTripletBuilder;
    use crate::{Block3, MultiVec};

    fn test_matrix(nb: usize, bandwidth: usize) -> crate::BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(8.0));
            for d in 1..=bandwidth {
                if bi + d < nb {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = rng();
                    }
                    t.add_symmetric_pair(bi, bi + d, b);
                }
            }
        }
        t.build()
    }

    fn pseudo_mv(n: usize, m: usize, seed: u64) -> MultiVec {
        MultiVec::from_flat(
            n,
            m,
            (0..n * m)
                .map(|v| {
                    (((v as u64).wrapping_mul(seed | 1).wrapping_add(0x9e3779b9)
                        % 29) as f64)
                        - 14.0
                })
                .collect(),
        )
    }

    /// The SIMD row kernel agrees with the scalar reference across the
    /// grid and across off-grid widths (every chunk/tail combination),
    /// on whatever vector ISA this host has.
    #[test]
    fn simd_rows_match_scalar_all_widths() {
        let Some(simd) = backend_for(KernelKind::Simd) else {
            eprintln!("no vector ISA detected; skipping");
            return;
        };
        let scalar = backend_for(KernelKind::Scalar).unwrap();
        let a = test_matrix(33, 4);
        let n = a.n_rows();
        for m in [1usize, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 17, 24, 31, 32, 48] {
            let x = pseudo_mv(n, m, 11 + m as u64);
            let mut y1 = MultiVec::zeros(n, m);
            let mut y2 = MultiVec::zeros(n, m);
            scalar.gspmv_rows(
                &a,
                x.as_slice(),
                y1.as_mut_slice(),
                m,
                0..a.nb_rows(),
            );
            simd.gspmv_rows(&a, x.as_slice(), y2.as_mut_slice(), m, 0..a.nb_rows());
            for (u, v) in y1.as_slice().iter().zip(y2.as_slice()) {
                assert!(
                    (u - v).abs() <= 1e-12 * u.abs().max(v.abs()).max(1.0),
                    "isa={} m={m}: {u} vs {v}",
                    detect_isa().as_str()
                );
            }
        }
    }

    /// Dense SIMD kernels agree with the portable implementations.
    #[test]
    fn simd_dense_kernels_match_reference() {
        let isa = detect_isa();
        if isa == Isa::Portable {
            eprintln!("no vector ISA detected; skipping");
            return;
        }
        for m in [4usize, 5, 8, 12, 16, 17] {
            if m < min_vector_width(isa) {
                continue;
            }
            let n = 37;
            let a = pseudo_mv(n, m, 3);
            let b = pseudo_mv(n, m, 5);
            let c: Vec<f64> =
                (0..m * m).map(|v| ((v % 7) as f64 - 3.0) * 0.25).collect();

            // gram
            let got = gram(isa, a.as_slice(), b.as_slice(), m);
            let mut want = vec![0.0f64; m * m];
            for r in 0..n {
                for i in 0..m {
                    for j in 0..m {
                        want[i * m + j] += a.get(r, i) * b.get(r, j);
                    }
                }
            }
            for (u, v) in want.iter().zip(&got) {
                assert!((u - v).abs() <= 1e-12 * u.abs().max(1.0), "gram m={m}");
            }

            // add_mul
            let mut x1 = pseudo_mv(n, m, 7);
            let mut x2 = x1.clone();
            add_mul(isa, x1.as_mut_slice(), b.as_slice(), &c, m);
            for r in 0..n {
                for j in 0..m {
                    let mut acc = x2.get(r, j);
                    for k in 0..m {
                        acc += b.get(r, k) * c[k * m + j];
                    }
                    *x2.get_mut(r, j) = acc;
                }
            }
            for (u, v) in x2.as_slice().iter().zip(x1.as_slice()) {
                assert!((u - v).abs() <= 1e-12 * u.abs().max(1.0), "add_mul m={m}");
            }

            // assign_add_mul: p ← r + p·C
            let mut p1 = pseudo_mv(n, m, 9);
            let p0 = p1.clone();
            let rv = pseudo_mv(n, m, 13);
            assign_add_mul(isa, p1.as_mut_slice(), rv.as_slice(), &c, m);
            for r in 0..n {
                for j in 0..m {
                    let mut acc = rv.get(r, j);
                    for k in 0..m {
                        acc += p0.get(r, k) * c[k * m + j];
                    }
                    let got = p1.get(r, j);
                    assert!(
                        (acc - got).abs() <= 1e-12 * acc.abs().max(1.0),
                        "assign_add_mul m={m}"
                    );
                }
            }

            // sub_mul_gram: r ← r − q·C; G = rᵀr
            let mut r1 = pseudo_mv(n, m, 15);
            let r0 = r1.clone();
            let q = pseudo_mv(n, m, 17);
            let g = sub_mul_gram(isa, r1.as_mut_slice(), q.as_slice(), &c, m);
            let mut rwant = MultiVec::zeros(n, m);
            for r in 0..n {
                for j in 0..m {
                    let mut acc = r0.get(r, j);
                    for k in 0..m {
                        acc -= q.get(r, k) * c[k * m + j];
                    }
                    *rwant.get_mut(r, j) = acc;
                }
            }
            for (u, v) in rwant.as_slice().iter().zip(r1.as_slice()) {
                assert!(
                    (u - v).abs() <= 1e-11 * u.abs().max(1.0),
                    "sub_mul m={m}: {u} vs {v}"
                );
            }
            let mut gwant = vec![0.0f64; m * m];
            for r in 0..n {
                for i in 0..m {
                    for j in 0..m {
                        gwant[i * m + j] += rwant.get(r, i) * rwant.get(r, j);
                    }
                }
            }
            for (u, v) in gwant.iter().zip(&g) {
                assert!(
                    (u - v).abs() <= 1e-10 * u.abs().max(1.0),
                    "sub_mul_gram m={m}: {u} vs {v}"
                );
            }
        }
    }
}
