#![allow(clippy::needless_range_loop)] // index loops mirror the paper: i/j/k are matrix and coordinate indices

//! Sparse-matrix substrate for the MRHS reproduction.
//!
//! This crate provides the storage formats and kernels that the paper's
//! contribution is built on:
//!
//! * [`Block3`] — dense 3×3 blocks, the natural granularity of Stokesian
//!   dynamics resistance matrices (one block per particle pair).
//! * [`BcrsMatrix`] — Block Compressed Row Storage with 3×3 blocks, the
//!   format the paper uses for all experiments (§IV-A1).
//! * [`CsrMatrix`] — scalar CSR, used as a baseline in ablation benches.
//! * [`MultiVec`] — a block of `m` vectors stored **row-major** (all `m`
//!   values of a scalar row are contiguous), the layout the paper uses to
//!   get spatial locality in GSPMV.
//! * [`gspmv()`](gspmv::gspmv) — the generalized sparse matrix–multivector product, with
//!   monomorphized unrolled kernels for common `m` (the Rust analogue of
//!   the paper's code generator) and a rayon-parallel row-blocked driver.
//! * [`spmpv`] — level-blocked matrix-power kernels: `A·X … A^k·X`
//!   (and the shifted Chebyshev recurrence, fused) in ~one matrix
//!   stream via an anti-diagonal chunk×power wavefront.
//! * [`SymmetricBcrs`] — half storage (diagonal + strict upper blocks)
//!   for the symmetric resistance matrix, with serial and parallel GSPMV
//!   drivers that apply each stored block twice (`B` forward, `Bᵀ` down).
//!   The parallel driver gives each row chunk a private slab for its
//!   out-of-chunk transpose contributions and reduces them in a second
//!   disjoint pass — no atomics, no locks, and (because the chunking is
//!   derived from the matrix, not the pool) bitwise-deterministic
//!   across thread counts.
//! * [`partition`] — coordinate-based row partitioning (§IV-A2) and a
//!   recursive-coordinate-bisection comparator, used by the distributed
//!   GSPMV simulator.
//! * [`reorder`] — reverse Cuthill–McKee bandwidth reduction.
//! * [`backend`] — the [`KernelBackend`] abstraction: scalar
//!   (monomorphized), explicit-SIMD (`core::arch`, runtime-dispatched
//!   on AVX-512/AVX2/NEON), and generic kernel families, selected once
//!   per process with an `MRHS_KERNEL_BACKEND` override.
//! * [`DedupBcrs`] — BCRS with a unique-block pool, streaming 8 B of
//!   indices instead of 72 B of values for repeated blocks.
//!
//! The portable kernels are plain safe Rust written so the `m`-wide
//! inner loops autovectorize; the explicit-SIMD kernels confine their
//! `unsafe` to `core::arch` intrinsics behind runtime feature
//! detection.

pub mod backend;
pub mod bcrs;
pub mod block;
pub mod csr;
pub mod dedup;
pub mod gspmv;
mod instrument;
pub mod io;
pub mod multivec;
pub mod partition;
pub mod reorder;
mod simd;
pub mod spmpv;
pub mod stats;
pub mod symmetric;
pub mod triplet;

pub use backend::{
    active_backend, backend_available, backend_for, detect_isa, select_kind, Isa,
    KernelBackend, KernelKind, WIDTH_GRID,
};
pub use bcrs::BcrsMatrix;
pub use block::Block3;
pub use csr::CsrMatrix;
pub use dedup::{DedupBcrs, DEDUP_DEFAULT_MAX_RATIO};
pub use gspmv::{
    gspmv, gspmv_chunked, gspmv_chunked_with, gspmv_serial, gspmv_serial_with,
    gspmv_with, spmv, spmv_serial,
};
pub use multivec::{MultiVec, SPECIALIZED_WIDTHS};
pub use spmpv::{
    spmpv_chebyshev, spmpv_chebyshev_with, spmpv_powers, spmpv_powers_with,
    spmpv_powers_with_plan, PowerPlan, SPMPV_MAX_DEPTH,
};
pub use stats::MatrixStats;
pub use symmetric::SymmetricBcrs;
pub use triplet::BlockTripletBuilder;

/// Scalar dimension of the blocks used throughout this workspace.
pub const BLOCK_DIM: usize = 3;
