//! Runtime-dispatched kernel backends.
//!
//! The paper's kernels were emitted by a code generator targeting the
//! host's SIMD width (§IV-A1). This workspace's portable analogue is
//! monomorphization (`gspmv_rows_fixed::<M>` relies on LLVM
//! autovectorization at the build's baseline target features), which
//! leaves real speed on the table when the *running* CPU has wider
//! vectors than the build target (the common case: portable builds are
//! SSE2-baseline, servers have AVX2/AVX-512). This module closes that
//! gap with a [`KernelBackend`] trait and three implementations:
//!
//! * **scalar** — the original monomorphized kernels, kept bit-for-bit
//!   as the portable reference;
//! * **simd** — explicit `core::arch` intrinsics (AVX-512 / AVX2+FMA /
//!   NEON) with register-tiled `m`-lane micro-kernels, selected against
//!   the ISA detected *at run time* (see [`crate::simd`]);
//! * **generic** — the strip-mined any-`m` fallback, exposed as a
//!   backend so ablations and the oracle can force it.
//!
//! The backend is chosen **once per process** ([`active_backend`]):
//! `MRHS_KERNEL_BACKEND=scalar|simd|generic` overrides, otherwise the
//! best backend for the detected ISA wins (SIMD when any vector ISA is
//! present, scalar otherwise). Every GSPMV entry point — full storage,
//! dedup storage, and the symmetric two-phase driver — routes its row
//! ranges through the active backend, so solvers, the distributed
//! engine, and the solve service inherit the dispatch for free.
//!
//! All backends share the determinism contracts the oracle pins down:
//! within one backend, serial/auto/chunked full-storage results are
//! bitwise identical (row accumulation never crosses a chunk), and the
//! dedup path is bitwise identical to full storage (same kernel, same
//! order, pool-indirect block fetch). *Across* backends results differ
//! only in rounding (the SIMD path uses fused multiply-adds), within
//! the oracle's `TolModel::KERNEL` bounds.

use crate::bcrs::BcrsMatrix;
use crate::dedup::DedupBcrs;
use crate::gspmv::{dispatch_rows_scalar, gspmv_rows_generic};
use crate::simd;
use crate::symmetric::{dispatch_sym_rows_scalar, sym_rows_generic, SymmetricBcrs};
use std::ops::Range;
use std::sync::OnceLock;

/// The one width grid every backend currently specializes: the `m`
/// values with dedicated fast paths in the monomorphized kernels, the
/// SIMD chunk decomposition, and the dense MultiVec ops. Exposed
/// per-backend through [`KernelBackend::specialized_widths`] so
/// width-choosing layers (the solve service's batcher) query the
/// *active* backend instead of a constant that could drift.
pub const WIDTH_GRID: [usize; 10] = [1, 2, 4, 8, 12, 16, 24, 32, 42, 48];

/// Which kernel implementation family a backend belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Monomorphized portable kernels (the reference).
    Scalar,
    /// Explicit `core::arch` SIMD kernels.
    Simd,
    /// Strip-mined any-`m` fallback kernels.
    Generic,
}

impl KernelKind {
    /// Stable lowercase name (used in env overrides, telemetry counter
    /// tags, oracle backend names, and bench reports).
    pub const fn as_str(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
            KernelKind::Generic => "generic",
        }
    }

    /// Parses an `MRHS_KERNEL_BACKEND` value.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" | "mono" | "monomorphized" => Some(KernelKind::Scalar),
            "simd" => Some(KernelKind::Simd),
            "generic" => Some(KernelKind::Generic),
            _ => None,
        }
    }

    /// All kinds, in dispatch-preference order.
    pub const ALL: [KernelKind; 3] =
        [KernelKind::Simd, KernelKind::Scalar, KernelKind::Generic];
}

/// Vector instruction set a backend's kernels target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// x86-64 AVX-512F (8 f64 lanes).
    Avx512,
    /// x86-64 AVX2 + FMA (4 f64 lanes).
    Avx2,
    /// AArch64 Advanced SIMD (2 f64 lanes, baseline on aarch64).
    Neon,
    /// No explicit vector ISA — whatever the build baseline provides.
    Portable,
}

impl Isa {
    /// Stable lowercase name (recorded in bench reports).
    pub const fn as_str(self) -> &'static str {
        match self {
            Isa::Avx512 => "avx512",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
            Isa::Portable => "portable",
        }
    }
}

/// Runtime CPU-feature detection, cached. AVX-512F beats AVX2 beats the
/// portable baseline on x86-64; NEON is unconditionally available on
/// aarch64.
pub fn detect_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return Isa::Neon;
        }
        #[allow(unreachable_code)]
        Isa::Portable
    })
}

/// One kernel implementation family: row-range kernels for every
/// storage format plus the width grid it specializes. Implementations
/// are zero-sized and `'static`; dispatch happens per *row range*, so
/// the virtual call is amortized over an entire chunk of block rows.
pub trait KernelBackend: Sync {
    /// Which family this is.
    fn kind(&self) -> KernelKind;

    /// The vector ISA the kernels use (`Portable` for scalar/generic).
    fn isa(&self) -> Isa;

    /// Stable name for telemetry/report tagging.
    fn name(&self) -> &'static str {
        self.kind().as_str()
    }

    /// The `m` grid with dedicated fast paths — what the solve
    /// service's width snapping must use.
    fn specialized_widths(&self) -> &'static [usize] {
        &WIDTH_GRID
    }

    /// Full-storage GSPMV over `rows`; `y` is the slice for exactly
    /// those rows (disjoint windows in the chunked driver).
    fn gspmv_rows(
        &self,
        a: &BcrsMatrix,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    );

    /// Dedup-storage GSPMV over `rows` — the same contract with blocks
    /// fetched through the pool indirection. Must be bitwise identical
    /// to [`Self::gspmv_rows`] on the expanded matrix.
    fn gspmv_rows_dedup(
        &self,
        d: &DedupBcrs,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    );

    /// Fused row kernel for the shifted Chebyshev three-term
    /// recurrence (the SpMPV wavefront's per-cell step): for `rows`
    /// only, computes the next level
    /// `out = 2·(A·u_cur − mid·u_cur)/half − u_prev`, or just
    /// `(A·u_cur − mid·u_cur)/half` when `u_prev` is `None` (the first
    /// level, `u_1 = Ã·u_0`). `out` is the slice for exactly those
    /// rows; `u_cur`/`u_prev` span the full operand because the column
    /// gather reaches outside `rows`. Provided in terms of
    /// [`Self::gspmv_rows`] plus a portable elementwise combine, so
    /// every backend family serves the fused Chebyshev path;
    /// implementations may override with a fully fused kernel.
    #[allow(clippy::too_many_arguments)]
    fn cheb_shifted_rows(
        &self,
        a: &BcrsMatrix,
        u_cur: &[f64],
        u_prev: Option<&[f64]>,
        out: &mut [f64],
        mid: f64,
        half: f64,
        m: usize,
        rows: Range<usize>,
    ) {
        self.gspmv_rows(a, u_cur, out, m, rows.clone());
        let inv = 1.0 / half;
        let base = rows.start * crate::BLOCK_DIM * m;
        let cur = &u_cur[base..base + out.len()];
        match u_prev {
            None => {
                for (o, &c) in out.iter_mut().zip(cur) {
                    *o = (*o - mid * c) * inv;
                }
            }
            Some(up) => {
                let prev = &up[base..base + cur.len()];
                for ((o, &c), &p) in out.iter_mut().zip(cur).zip(prev) {
                    *o = 2.0 * ((*o - mid * c) * inv) - p;
                }
            }
        }
    }

    /// Symmetric-storage two-phase row kernel; see
    /// `symmetric::dispatch_sym_rows` for the window/slab contract.
    #[allow(clippy::too_many_arguments)]
    fn sym_rows(
        &self,
        s: &SymmetricBcrs,
        x: &[f64],
        window: &mut [f64],
        slab: &mut [f64],
        slab_base: usize,
        m: usize,
        rows: Range<usize>,
    );
}

/// The monomorphized reference backend.
struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }
    fn isa(&self) -> Isa {
        Isa::Portable
    }
    fn gspmv_rows(
        &self,
        a: &BcrsMatrix,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    ) {
        dispatch_rows_scalar(a.row_ptr(), a.col_idx(), a.blocks(), x, y, m, rows);
    }
    fn gspmv_rows_dedup(
        &self,
        d: &DedupBcrs,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    ) {
        dispatch_rows_scalar(
            d.row_ptr(),
            d.col_idx(),
            d.pool_blocks(),
            x,
            y,
            m,
            rows,
        );
    }
    fn sym_rows(
        &self,
        s: &SymmetricBcrs,
        x: &[f64],
        window: &mut [f64],
        slab: &mut [f64],
        slab_base: usize,
        m: usize,
        rows: Range<usize>,
    ) {
        dispatch_sym_rows_scalar(s, x, window, slab, slab_base, m, rows);
    }
}

/// The strip-mined any-`m` fallback as a forceable backend.
struct GenericBackend;

impl KernelBackend for GenericBackend {
    fn kind(&self) -> KernelKind {
        KernelKind::Generic
    }
    fn isa(&self) -> Isa {
        Isa::Portable
    }
    fn gspmv_rows(
        &self,
        a: &BcrsMatrix,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    ) {
        gspmv_rows_generic(a.row_ptr(), a.col_idx(), a.blocks(), x, y, m, rows);
    }
    fn gspmv_rows_dedup(
        &self,
        d: &DedupBcrs,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    ) {
        gspmv_rows_generic(
            d.row_ptr(),
            d.col_idx(),
            d.pool_blocks(),
            x,
            y,
            m,
            rows,
        );
    }
    fn sym_rows(
        &self,
        s: &SymmetricBcrs,
        x: &[f64],
        window: &mut [f64],
        slab: &mut [f64],
        slab_base: usize,
        m: usize,
        rows: Range<usize>,
    ) {
        sym_rows_generic(s, x, window, slab, slab_base, m, rows);
    }
}

/// Explicit-SIMD backend carrying the detected ISA. Widths narrower
/// than one vector delegate to the scalar backend (they would be all
/// scalar tail anyway, and the monomorphized kernels are better there).
struct SimdBackend(Isa);

impl SimdBackend {
    #[inline]
    fn narrow(&self, m: usize) -> bool {
        m < simd::min_vector_width(self.0)
    }
}

impl KernelBackend for SimdBackend {
    fn kind(&self) -> KernelKind {
        KernelKind::Simd
    }
    fn isa(&self) -> Isa {
        self.0
    }
    fn gspmv_rows(
        &self,
        a: &BcrsMatrix,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    ) {
        if self.narrow(m) {
            return ScalarBackend.gspmv_rows(a, x, y, m, rows);
        }
        simd::gspmv_rows(
            self.0,
            a.row_ptr(),
            a.col_idx(),
            a.blocks(),
            x,
            y,
            m,
            rows,
        );
    }
    fn gspmv_rows_dedup(
        &self,
        d: &DedupBcrs,
        x: &[f64],
        y: &mut [f64],
        m: usize,
        rows: Range<usize>,
    ) {
        if self.narrow(m) {
            return ScalarBackend.gspmv_rows_dedup(d, x, y, m, rows);
        }
        simd::gspmv_rows(
            self.0,
            d.row_ptr(),
            d.col_idx(),
            d.pool_blocks(),
            x,
            y,
            m,
            rows,
        );
    }
    fn sym_rows(
        &self,
        s: &SymmetricBcrs,
        x: &[f64],
        window: &mut [f64],
        slab: &mut [f64],
        slab_base: usize,
        m: usize,
        rows: Range<usize>,
    ) {
        if self.narrow(m) {
            return ScalarBackend.sym_rows(s, x, window, slab, slab_base, m, rows);
        }
        simd::sym_rows(self.0, s, x, window, slab, slab_base, m, rows);
    }
}

static SCALAR: ScalarBackend = ScalarBackend;
static GENERIC: GenericBackend = GenericBackend;

/// The backend for an explicit kind, or `None` when the host cannot
/// run it (`Simd` without a detected vector ISA).
pub fn backend_for(kind: KernelKind) -> Option<&'static dyn KernelBackend> {
    match kind {
        KernelKind::Scalar => Some(&SCALAR),
        KernelKind::Generic => Some(&GENERIC),
        KernelKind::Simd => {
            let isa = detect_isa();
            if isa == Isa::Portable {
                return None;
            }
            static SIMD: OnceLock<SimdBackend> = OnceLock::new();
            Some(SIMD.get_or_init(|| SimdBackend(isa)))
        }
    }
}

/// Whether [`backend_for`] would succeed — what oracle backends and
/// bench ablations use to skip unavailable kinds.
pub fn backend_available(kind: KernelKind) -> bool {
    backend_for(kind).is_some()
}

/// Pure selection policy: the kind that an env override `requested`
/// plus a detected ISA resolve to. Unknown override values and `simd`
/// on a vector-less host fall back to the auto choice; auto picks SIMD
/// whenever a vector ISA is present.
pub fn select_kind(requested: Option<&str>, isa: Isa) -> KernelKind {
    let auto =
        if isa == Isa::Portable { KernelKind::Scalar } else { KernelKind::Simd };
    match requested.and_then(KernelKind::parse) {
        Some(KernelKind::Simd) if isa == Isa::Portable => KernelKind::Scalar,
        Some(k) => k,
        None => auto,
    }
}

/// The process-wide active backend, selected once on first use from
/// `MRHS_KERNEL_BACKEND` and the detected ISA.
pub fn active_backend() -> &'static dyn KernelBackend {
    static ACTIVE: OnceLock<&'static dyn KernelBackend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let kind = select_kind(
            std::env::var("MRHS_KERNEL_BACKEND").ok().as_deref(),
            detect_isa(),
        );
        backend_for(kind).unwrap_or(&SCALAR)
    })
}

/// The ISA of the SIMD dense-kernel fast path for width `m`, when the
/// active backend is SIMD and `m` spans at least one vector — the gate
/// the MultiVec dense ops (Gram, `X += P·C`, fused sub-mul-gram) use.
pub(crate) fn simd_dense_isa(m: usize) -> Option<Isa> {
    let b = active_backend();
    if b.kind() != KernelKind::Simd {
        return None;
    }
    let isa = b.isa();
    (m >= simd::min_vector_width(isa)).then_some(isa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_policy() {
        // Explicit overrides win where runnable.
        assert_eq!(select_kind(Some("scalar"), Isa::Avx512), KernelKind::Scalar);
        assert_eq!(select_kind(Some("mono"), Isa::Avx2), KernelKind::Scalar);
        assert_eq!(select_kind(Some("generic"), Isa::Neon), KernelKind::Generic);
        assert_eq!(select_kind(Some("simd"), Isa::Avx2), KernelKind::Simd);
        // SIMD without a vector ISA degrades to scalar.
        assert_eq!(select_kind(Some("simd"), Isa::Portable), KernelKind::Scalar);
        // Auto: SIMD when vectors exist, scalar otherwise.
        assert_eq!(select_kind(None, Isa::Avx512), KernelKind::Simd);
        assert_eq!(select_kind(None, Isa::Neon), KernelKind::Simd);
        assert_eq!(select_kind(None, Isa::Portable), KernelKind::Scalar);
        // Unknown values fall back to auto, not a panic.
        assert_eq!(select_kind(Some("turbo"), Isa::Portable), KernelKind::Scalar);
        assert_eq!(select_kind(Some("turbo"), Isa::Avx2), KernelKind::Simd);
    }

    #[test]
    fn scalar_and_generic_always_available() {
        assert!(backend_available(KernelKind::Scalar));
        assert!(backend_available(KernelKind::Generic));
        // Whatever the host, the active backend resolves.
        let b = active_backend();
        assert!(!b.name().is_empty());
        assert!(b.specialized_widths().contains(&1));
    }

    #[test]
    fn simd_backend_matches_detection() {
        let isa = detect_isa();
        assert_eq!(backend_available(KernelKind::Simd), isa != Isa::Portable);
        if let Some(b) = backend_for(KernelKind::Simd) {
            assert_eq!(b.kind(), KernelKind::Simd);
            assert_eq!(b.isa(), isa);
        }
    }

    #[test]
    fn width_grid_is_sorted_and_starts_at_one() {
        assert_eq!(WIDTH_GRID[0], 1);
        assert!(WIDTH_GRID.windows(2).all(|w| w[0] < w[1]));
    }
}
