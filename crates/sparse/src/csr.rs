//! Scalar compressed sparse row format.
//!
//! Used as the ablation baseline against BCRS: same matrices, no block
//! structure, so each scalar non-zero carries its own column index and
//! the kernel cannot amortize index decoding over nine values.

use crate::bcrs::BcrsMatrix;
use crate::multivec::MultiVec;
use crate::BLOCK_DIM;

/// A scalar CSR matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles from raw parts, validating invariants.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1);
        assert_eq!(col_idx.len(), values.len());
        assert_eq!(*row_ptr.last().unwrap_or(&0), values.len());
        for i in 0..n_rows {
            assert!(row_ptr[i] <= row_ptr[i + 1]);
            let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns not strictly increasing in row {i}");
            }
            if let Some(&last) = cols.last() {
                assert!((last as usize) < n_cols);
            }
        }
        CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// Number of scalar rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of scalar columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored scalars.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for i in 0..self.n_rows {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// `Y = A·X` on row-major multivectors (scalar-CSR GSPMV; the
    /// ablation comparator for the BCRS kernels).
    pub fn gspmv(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.n_cols);
        assert_eq!(y.n(), self.n_rows);
        assert_eq!(x.m(), y.m());
        let m = x.m();
        let xs = x.as_slice();
        for i in 0..self.n_rows {
            let yrow = y.row_mut(i);
            yrow.fill(0.0);
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                let xrow = &xs[self.col_idx[k] as usize * m..][..m];
                for j in 0..m {
                    yrow[j] += v * xrow[j];
                }
            }
        }
    }

    /// Bytes of matrix data streamed per multiply (values + indices +
    /// row pointers), for the bandwidth model comparison with BCRS.
    pub fn stream_bytes(&self) -> usize {
        self.nnz() * (8 + 4) + 4 * self.n_rows
    }
}

impl From<&BcrsMatrix> for CsrMatrix {
    /// Expands a BCRS matrix into scalar CSR, dropping explicit zeros
    /// inside blocks.
    fn from(a: &BcrsMatrix) -> Self {
        let n_rows = a.n_rows();
        let n_cols = a.n_cols();
        let mut row_ptr = vec![0usize; n_rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for bi in 0..a.nb_rows() {
            let (cols, blocks) = a.block_row(bi);
            for i in 0..BLOCK_DIM {
                for (c, b) in cols.iter().zip(blocks) {
                    for j in 0..BLOCK_DIM {
                        let v = b.get(i, j);
                        if v != 0.0 {
                            col_idx.push((*c as usize * BLOCK_DIM + j) as u32);
                            values.push(v);
                        }
                    }
                }
                row_ptr[bi * BLOCK_DIM + i + 1] = values.len();
            }
        }
        CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block3;
    use crate::triplet::BlockTripletBuilder;

    fn sample_bcrs() -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(3);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 1, Block3::scaled_identity(1.0));
        t.add(2, 2, Block3::scaled_identity(4.0));
        t.add_symmetric_pair(
            0,
            2,
            Block3::from_rows([[0.0, 1.0, 0.0], [0.5, 0.0, 0.0], [0.0, 0.0, -1.0]]),
        );
        t.build()
    }

    #[test]
    fn conversion_preserves_spmv() {
        let a = sample_bcrs();
        let c = CsrMatrix::from(&a);
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|v| (v as f64) * 0.3 - 1.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        crate::gspmv::spmv_serial(&a, &x, &mut y1);
        c.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn conversion_drops_in_block_zeros() {
        let a = sample_bcrs();
        let c = CsrMatrix::from(&a);
        // identity blocks contribute 3 scalars each, the pair block has 3
        // non-zeros and its transpose 3 more: 9 + 6 = 15
        assert_eq!(c.nnz(), 15);
        assert!(c.nnz() < a.nnz());
    }

    #[test]
    fn csr_gspmv_matches_bcrs_gspmv() {
        let a = sample_bcrs();
        let c = CsrMatrix::from(&a);
        let n = a.n_rows();
        let m = 4;
        let mut x = MultiVec::zeros(n, m);
        for j in 0..m {
            let col: Vec<f64> =
                (0..n).map(|r| (r * (j + 1)) as f64 * 0.1).collect();
            x.set_column(j, &col);
        }
        let mut y1 = MultiVec::zeros(n, m);
        let mut y2 = MultiVec::zeros(n, m);
        crate::gspmv::gspmv_serial(&a, &x, &mut y1);
        c.gspmv(&x, &mut y2);
        for (u, v) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn stream_bytes_smaller_per_scalar_for_bcrs() {
        // BCRS carries one 4-byte index per 9 scalars; CSR one per scalar.
        let a = sample_bcrs();
        let c = CsrMatrix::from(&a);
        let bcrs_per_scalar = a.stream_bytes() as f64 / a.nnz() as f64;
        let csr_per_scalar = c.stream_bytes() as f64 / c.nnz() as f64;
        assert!(bcrs_per_scalar < csr_per_scalar + 8.0 / 9.0);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_row_ptr() {
        CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
    }
}
