//! Telemetry hooks for the GSPMV kernels.
//!
//! Each *public entry point* records exactly one call's worth of
//! counters and one span — internal delegation (`gspmv` →
//! `gspmv_chunked` → row kernels) goes through uncounted `_impl`
//! functions, so nothing is double-counted.
//!
//! The byte counters use the minimum-traffic accounting of the paper's
//! Eq. 8 with `k = 0` (see `mrhs-perfmodel`): the matrix stream is
//! what the format physically holds (blocks + indices + row pointers),
//! and the vector stream is the `3·m·nb·s_x` term. Measured GB/s
//! derived from these counters is therefore directly comparable with
//! the model's bandwidth bound; cache-missed re-reads of X (the
//! model's `k(m)` term) show up as *achieved* bandwidth above the
//! minimum, exactly how the paper frames it.

use crate::BLOCK_DIM;
use mrhs_telemetry::{trace, SpanGuard, TraceSpan};

/// Flops per stored-block application per vector (Eq. 8's `f_a`).
pub const FLOPS_PER_BLOCK_PER_VECTOR: u64 = 18;

/// RAII guard for one kernel invocation: the registry span timer plus,
/// when causal tracing is on *and* the calling thread carries a trace
/// context (it runs on the service worker's thread, outside the rayon
/// parallel region), a trace child span under that context. Both sides
/// are inert when their respective layer is disabled.
pub struct KernelGuard {
    _span: SpanGuard,
    _trace: Option<TraceSpan>,
}

/// Opens the per-call kernel span `kernel/{kind}/m{m}` (inert — no
/// allocation, no clock — while telemetry is disabled).
pub(crate) fn kernel_span(kind: &str, m: usize) -> KernelGuard {
    let span = if mrhs_telemetry::enabled() {
        mrhs_telemetry::span(&format!("kernel/{kind}/m{m}"))
    } else {
        SpanGuard::inert()
    };
    let tr = if trace::trace_enabled() {
        trace::child_span(&format!("kernel/{kind}/m{m}"))
    } else {
        None
    };
    KernelGuard { _span: span, _trace: tr }
}

/// Tags one kernel dispatch with the backend that ran it:
/// `kernel_backend/{name}/calls`. This is how tests (and post-hoc bench
/// analysis) verify which implementation `MRHS_KERNEL_BACKEND` actually
/// selected — the counter is recorded by the same entry points that
/// count the kernel call itself.
pub(crate) fn record_backend(name: &str) {
    if mrhs_telemetry::enabled() {
        mrhs_telemetry::counter_add(&format!("kernel_backend/{name}/calls"), 1);
    }
}

/// Records one kernel invocation: calls, flops, matrix/vector bytes,
/// all under `{kind}/m{m}/…`. `applied_blocks` is the number of
/// block·vector multiplications per vector (for symmetric storage each
/// stored off-diagonal block is applied twice).
pub(crate) fn record_kernel_call(
    kind: &str,
    m: usize,
    nb_rows: u64,
    applied_blocks: u64,
    matrix_bytes: u64,
) {
    if !mrhs_telemetry::enabled() {
        return;
    }
    let pfx = format!("{kind}/m{m}");
    mrhs_telemetry::counter_add(&format!("{pfx}/calls"), 1);
    mrhs_telemetry::counter_add(
        &format!("{pfx}/flops"),
        FLOPS_PER_BLOCK_PER_VECTOR * m as u64 * applied_blocks,
    );
    mrhs_telemetry::counter_add(&format!("{pfx}/matrix_bytes"), matrix_bytes);
    mrhs_telemetry::counter_add(
        &format!("{pfx}/vector_bytes"),
        (BLOCK_DIM * m * 8) as u64 * nb_rows,
    );
}
