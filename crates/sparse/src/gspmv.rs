//! SPMV and GSPMV kernels.
//!
//! The paper's "basic kernel" multiplies one 3×3 block by a 3×`m` slab of
//! the multivector with the multiplication of each matrix element
//! unrolled by `m` (§IV-A1, produced there by a code generator emitting
//! SSE/AVX). This module holds the *portable* kernels: monomorphized
//! over `const M: usize` so the `m`-wide inner loops are
//! fixed-trip-count arrays that LLVM unrolls and autovectorizes, plus a
//! strip-mined generic any-`m` fallback and a naive ablation baseline.
//! The explicit-SIMD kernels live in `crate::simd`, and every public
//! entry point here routes its row ranges through the process-wide
//! [`crate::backend::active_backend`] — override with
//! `MRHS_KERNEL_BACKEND=scalar|simd|generic`.
//!
//! All row kernels are generic over [`BlockGet`], the block-fetch
//! abstraction that lets full storage (`&[Block3]`) and dedup storage
//! (pool-indirect indices, `crate::dedup`) share one kernel body — and
//! therefore produce bitwise-identical results.
//!
//! Thread blocking follows the paper: block rows are split into chunks of
//! balanced non-zero count and each chunk writes a disjoint slice of `Y`.

use crate::backend::{self, KernelBackend, KernelKind};
use crate::bcrs::BcrsMatrix;
use crate::block::Block3;
use crate::instrument;
use crate::multivec::MultiVec;
use crate::BLOCK_DIM;
use std::ops::Range;

/// Block fetch for row kernels: entry `k` of the CSR structure resolves
/// to a 3×3 block. Full storage fetches `blocks[k]`; dedup storage
/// fetches `pool[pool_idx[k]]`. `Copy + Sync` so chunked drivers can
/// hand the same view to every rayon job.
pub(crate) trait BlockGet: Copy + Sync {
    fn block(&self, k: usize) -> &Block3;
}

impl BlockGet for &[Block3] {
    #[inline(always)]
    fn block(&self, k: usize) -> &Block3 {
        &self[k]
    }
}

/// Counts one full-storage GSPMV call under `gspmv/m{m}/…`, tags the
/// dispatched backend, and opens the `kernel/gspmv/m{m}` span. The
/// matrix stream is what BCRS physically holds: 72 B per block, 4 B per
/// column index, 4 B per row pointer. Called only from the public entry
/// points, never from the internal row kernels, so delegation does not
/// double-count.
fn instrument_full(
    a: &BcrsMatrix,
    m: usize,
    b: &dyn KernelBackend,
) -> crate::instrument::KernelGuard {
    let nb = a.nb_rows() as u64;
    let nnzb = a.nnz_blocks() as u64;
    instrument::record_kernel_call("gspmv", m, nb, nnzb, 4 * nb + 76 * nnzb);
    instrument::record_backend(b.name());
    instrument::kernel_span("gspmv", m)
}

/// The `m` sizes with dedicated monomorphized kernels. Mirrors the set of
/// generated kernels in the paper's experiments (m up to 32 on clusters,
/// 42 on single node; sizes in between fall back to the generic kernel).
/// This is [`crate::backend::WIDTH_GRID`] — the per-backend grid is
/// exposed through [`crate::backend::KernelBackend::specialized_widths`].
pub const SPECIALIZED_M: &[usize] = &backend::WIDTH_GRID;

/// Single-vector SPMV on plain slices: `y = A·x`.
///
/// `x` must have `a.n_cols()` entries and `y` must have `a.n_rows()`.
/// Runs the active backend's row kernel at `m = 1` (the SIMD backend
/// delegates widths below one vector to the monomorphized kernels, so
/// this is the scalar fixed-`1` kernel everywhere today).
pub fn spmv_serial(a: &BcrsMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.n_cols(), "x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "y length mismatch");
    backend::active_backend().gspmv_rows(a, x, y, 1, 0..a.nb_rows());
}

/// Serial GSPMV: `Y = A·X` with `X`, `Y` row-major multivectors,
/// through the active backend.
pub fn gspmv_serial(a: &BcrsMatrix, x: &MultiVec, y: &mut MultiVec) {
    gspmv_serial_impl(backend::active_backend(), a, x, y);
}

/// Serial GSPMV through an explicitly chosen backend kind — the entry
/// point ablations and the oracle registry use to pin a specific
/// implementation regardless of `MRHS_KERNEL_BACKEND`.
///
/// # Panics
/// When `kind` is unavailable on this host (SIMD without a vector ISA);
/// gate with [`crate::backend::backend_available`].
pub fn gspmv_serial_with(
    kind: KernelKind,
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
) {
    gspmv_serial_impl(require_backend(kind), a, x, y);
}

fn gspmv_serial_impl(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
) {
    check_shapes(a, x, y);
    let m = x.m();
    let _span = instrument_full(a, m, b);
    b.gspmv_rows(a, x.as_slice(), y.as_mut_slice(), m, 0..a.nb_rows());
}

/// Serial GSPMV that always uses the generic (non-unrolled) kernel.
/// Exists for the unrolled-vs-generic ablation bench.
pub fn gspmv_serial_generic(a: &BcrsMatrix, x: &MultiVec, y: &mut MultiVec) {
    check_shapes(a, x, y);
    gspmv_rows_generic(
        a.row_ptr(),
        a.col_idx(),
        a.blocks(),
        x.as_slice(),
        y.as_mut_slice(),
        x.m(),
        0..a.nb_rows(),
    );
}

/// Parallel GSPMV: block rows are chunked with balanced non-zero counts
/// (the paper's thread blocking) and chunks run on the rayon pool.
///
/// Every output row is accumulated entirely inside its own chunk in
/// fixed per-row order, so the result is **bitwise identical** to
/// [`gspmv_serial`] for any chunking, pool width, or interleaving.
pub fn gspmv(a: &BcrsMatrix, x: &MultiVec, y: &mut MultiVec) {
    gspmv_impl(backend::active_backend(), a, x, y);
}

/// Auto parallel GSPMV through an explicitly chosen backend kind
/// (panics when unavailable, like [`gspmv_serial_with`]).
pub fn gspmv_with(
    kind: KernelKind,
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
) {
    gspmv_impl(require_backend(kind), a, x, y);
}

fn gspmv_impl(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
) {
    check_shapes(a, x, y);
    let _span = instrument_full(a, x.m(), b);
    let nthreads = rayon::current_num_threads();
    if nthreads <= 1 || a.nnz_blocks() < 1 << 14 {
        b.gspmv_rows(a, x.as_slice(), y.as_mut_slice(), x.m(), 0..a.nb_rows());
        return;
    }
    gspmv_chunked_impl(b, a, x, y, nthreads * 4);
}

/// Parallel GSPMV with an explicit chunk count — the entry point the
/// oracle harness uses to prove the full-storage result is chunking-
/// independent. Bitwise identical to [`gspmv_serial`] for every
/// `nchunks` (row accumulation order never crosses a chunk boundary).
pub fn gspmv_chunked(
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
    nchunks: usize,
) {
    let b = backend::active_backend();
    check_shapes(a, x, y);
    let _span = instrument_full(a, x.m(), b);
    gspmv_chunked_impl(b, a, x, y, nchunks);
}

/// Chunked GSPMV through an explicitly chosen backend kind (panics when
/// unavailable, like [`gspmv_serial_with`]).
pub fn gspmv_chunked_with(
    kind: KernelKind,
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
    nchunks: usize,
) {
    let b = require_backend(kind);
    check_shapes(a, x, y);
    let _span = instrument_full(a, x.m(), b);
    gspmv_chunked_impl(b, a, x, y, nchunks);
}

fn require_backend(kind: KernelKind) -> &'static dyn KernelBackend {
    backend::backend_for(kind)
        .expect("requested kernel backend unavailable on this host")
}

fn gspmv_chunked_impl(
    b: &dyn KernelBackend,
    a: &BcrsMatrix,
    x: &MultiVec,
    y: &mut MultiVec,
    nchunks: usize,
) {
    let m = x.m();
    let chunks = balanced_row_chunks(a, nchunks);
    // Slice Y into disjoint per-chunk windows.
    let mut jobs: Vec<(Range<usize>, &mut [f64])> =
        Vec::with_capacity(chunks.len());
    let mut rest = y.as_mut_slice();
    let mut consumed = 0usize;
    for r in &chunks {
        let len = (r.end - r.start) * BLOCK_DIM * m;
        debug_assert_eq!(r.start * BLOCK_DIM * m, consumed);
        let (head, tail) = rest.split_at_mut(len);
        jobs.push((r.clone(), head));
        rest = tail;
        consumed += len;
    }
    let xs = x.as_slice();
    rayon::scope(|s| {
        for (rows, yslice) in jobs {
            s.spawn(move |_| b.gspmv_rows(a, xs, yslice, m, rows));
        }
    });
}

/// Parallel single-vector SPMV (the `m = 1` instantiation of the
/// parallel driver, with the same serial-fallback threshold).
pub fn spmv(a: &BcrsMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.n_cols());
    assert_eq!(y.len(), a.n_rows());
    let b = backend::active_backend();
    let nthreads = rayon::current_num_threads();
    if nthreads <= 1 || a.nnz_blocks() < 1 << 14 {
        b.gspmv_rows(a, x, y, 1, 0..a.nb_rows());
        return;
    }
    let chunks = balanced_row_chunks(a, nthreads * 4);
    let mut jobs: Vec<(Range<usize>, &mut [f64])> =
        Vec::with_capacity(chunks.len());
    let mut rest = y;
    for r in &chunks {
        let len = (r.end - r.start) * BLOCK_DIM;
        let (head, tail) = rest.split_at_mut(len);
        jobs.push((r.clone(), head));
        rest = tail;
    }
    rayon::scope(|s| {
        for (rows, yslice) in jobs {
            s.spawn(move |_| b.gspmv_rows(a, x, yslice, 1, rows));
        }
    });
}

/// Splits the block rows of `a` into at most `nchunks` contiguous ranges
/// with approximately equal stored-block counts. Every block row appears
/// in exactly one range.
pub fn balanced_row_chunks(a: &BcrsMatrix, nchunks: usize) -> Vec<Range<usize>> {
    balanced_chunks_from_parts(a.row_ptr(), a.nb_rows(), a.nnz_blocks(), nchunks)
}

/// The chunking policy on raw CSR parts, shared with dedup storage so
/// both formats chunk identically for a given structure.
#[allow(clippy::single_range_in_vec_init)]
pub(crate) fn balanced_chunks_from_parts(
    row_ptr: &[usize],
    nb: usize,
    nnzb: usize,
    nchunks: usize,
) -> Vec<Range<usize>> {
    if nb == 0 || nchunks <= 1 {
        return vec![0..nb];
    }
    let target = (nnzb / nchunks).max(1);
    let mut chunks = Vec::with_capacity(nchunks);
    let mut start = 0usize;
    let mut next_cut = target;
    for bi in 0..nb {
        if row_ptr[bi + 1] >= next_cut
            && bi + 1 > start
            && chunks.len() + 1 < nchunks
        {
            chunks.push(start..bi + 1);
            start = bi + 1;
            next_cut = row_ptr[bi + 1] + target;
        }
    }
    if start < nb || chunks.is_empty() {
        chunks.push(start..nb);
    }
    chunks
}

fn check_shapes(a: &BcrsMatrix, x: &MultiVec, y: &MultiVec) {
    check_mv_shapes(a.n_rows(), a.n_cols(), x, y);
}

/// Shape checks shared with [`crate::dedup::DedupBcrs`].
pub(crate) fn check_mv_shapes(
    n_rows: usize,
    n_cols: usize,
    x: &MultiVec,
    y: &MultiVec,
) {
    assert_eq!(x.n(), n_cols, "X row count must equal matrix columns");
    assert_eq!(y.n(), n_rows, "Y row count must equal matrix rows");
    assert_eq!(x.m(), y.m(), "X and Y must have the same number of columns");
}

/// Row-range dispatch of the portable monomorphized kernels — the
/// scalar backend's row kernel, also the delegation target for SIMD at
/// widths below one vector.
pub(crate) fn dispatch_rows_scalar<B: BlockGet>(
    row_ptr: &[usize],
    col_idx: &[u32],
    blocks: B,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    rows: Range<usize>,
) {
    match m {
        1 => gspmv_rows_fixed::<1, B>(row_ptr, col_idx, blocks, x, y, rows),
        2 => gspmv_rows_fixed::<2, B>(row_ptr, col_idx, blocks, x, y, rows),
        4 => gspmv_rows_fixed::<4, B>(row_ptr, col_idx, blocks, x, y, rows),
        8 => gspmv_rows_fixed::<8, B>(row_ptr, col_idx, blocks, x, y, rows),
        12 => gspmv_rows_fixed::<12, B>(row_ptr, col_idx, blocks, x, y, rows),
        16 => gspmv_rows_fixed::<16, B>(row_ptr, col_idx, blocks, x, y, rows),
        24 => gspmv_rows_fixed::<24, B>(row_ptr, col_idx, blocks, x, y, rows),
        32 => gspmv_rows_fixed::<32, B>(row_ptr, col_idx, blocks, x, y, rows),
        42 => gspmv_rows_fixed::<42, B>(row_ptr, col_idx, blocks, x, y, rows),
        48 => gspmv_rows_fixed::<48, B>(row_ptr, col_idx, blocks, x, y, rows),
        _ => gspmv_rows_generic(row_ptr, col_idx, blocks, x, y, m, rows),
    }
}

/// The monomorphized basic kernel: each 3×3 block multiplies a 3×M slab.
/// `y` is the slice for `rows` only (disjoint output windows in the
/// parallel driver).
fn gspmv_rows_fixed<const M: usize, B: BlockGet>(
    row_ptr: &[usize],
    col_idx: &[u32],
    blocks: B,
    x: &[f64],
    y: &mut [f64],
    rows: Range<usize>,
) {
    let y_base = rows.start * BLOCK_DIM * M;
    for bi in rows {
        let mut acc = [[0.0f64; M]; BLOCK_DIM];
        for k in row_ptr[bi]..row_ptr[bi + 1] {
            let b = blocks.block(k);
            let xoff = col_idx[k] as usize * BLOCK_DIM * M;
            let xs = &x[xoff..xoff + BLOCK_DIM * M];
            let x0: &[f64; M] = xs[..M].try_into().unwrap();
            let x1: &[f64; M] = xs[M..2 * M].try_into().unwrap();
            let x2: &[f64; M] = xs[2 * M..].try_into().unwrap();
            // One fused M-wide pass per output row: three broadcasts,
            // three FMAs per element, everything at compile-time trip
            // counts — the shape the paper's generated SIMD kernels had.
            for i in 0..BLOCK_DIM {
                let (a0, a1, a2) = (b.get(i, 0), b.get(i, 1), b.get(i, 2));
                let acc_i = &mut acc[i];
                for j in 0..M {
                    acc_i[j] += a0 * x0[j] + a1 * x1[j] + a2 * x2[j];
                }
            }
        }
        let yo = bi * BLOCK_DIM * M - y_base;
        for i in 0..BLOCK_DIM {
            y[yo + i * M..yo + (i + 1) * M].copy_from_slice(&acc[i]);
        }
    }
}

/// Generic any-`m` kernel. Columns are strip-mined in fixed-width
/// groups of 8 and 4 (with a scalar remainder) so the hot inner loops
/// have compile-time trip counts and autovectorize even though `m` is a
/// runtime value; only the final `m mod 4` columns take the scalar
/// path. The naive fully-runtime loop lives on in
/// [`gspmv_rows_naive`] as the ablation baseline.
pub(crate) fn gspmv_rows_generic<B: BlockGet>(
    row_ptr: &[usize],
    col_idx: &[u32],
    blocks: B,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    rows: Range<usize>,
) {
    let y_base = rows.start * BLOCK_DIM * m;
    let mut acc = vec![0.0f64; BLOCK_DIM * m];
    for bi in rows {
        acc.fill(0.0);
        for k in row_ptr[bi]..row_ptr[bi + 1] {
            let b = blocks.block(k);
            let xoff = col_idx[k] as usize * BLOCK_DIM * m;
            let xs = &x[xoff..xoff + BLOCK_DIM * m];
            for i in 0..BLOCK_DIM {
                let ai = [b.get(i, 0), b.get(i, 1), b.get(i, 2)];
                let acc_i = &mut acc[i * m..(i + 1) * m];
                for cc in 0..BLOCK_DIM {
                    let av = ai[cc];
                    let xr = &xs[cc * m..cc * m + m];
                    // 8-wide strips, then 4-wide, then scalar tail.
                    let mut j = 0;
                    while j + 8 <= m {
                        let xw: &[f64; 8] = xr[j..j + 8].try_into().unwrap();
                        let aw: &mut [f64] = &mut acc_i[j..j + 8];
                        for (a8, x8) in aw.iter_mut().zip(xw) {
                            *a8 += av * x8;
                        }
                        j += 8;
                    }
                    while j + 4 <= m {
                        let xw: &[f64; 4] = xr[j..j + 4].try_into().unwrap();
                        let aw: &mut [f64] = &mut acc_i[j..j + 4];
                        for (a4, x4) in aw.iter_mut().zip(xw) {
                            *a4 += av * x4;
                        }
                        j += 4;
                    }
                    while j < m {
                        acc_i[j] += av * xr[j];
                        j += 1;
                    }
                }
            }
        }
        let yo = bi * BLOCK_DIM * m - y_base;
        y[yo..yo + BLOCK_DIM * m].copy_from_slice(&acc);
    }
}

/// The fully-runtime-loop kernel: what GSPMV looks like with no
/// unrolling help at all. Kept (and exposed through
/// [`gspmv_serial_naive`]) purely as the ablation baseline.
fn gspmv_rows_naive(
    a: &BcrsMatrix,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    rows: Range<usize>,
) {
    let y_base = rows.start * BLOCK_DIM * m;
    let mut acc = vec![0.0f64; BLOCK_DIM * m];
    for bi in rows {
        let (cols, blocks) = a.block_row(bi);
        acc.fill(0.0);
        for (c, b) in cols.iter().zip(blocks) {
            let xoff = *c as usize * BLOCK_DIM * m;
            let xs = &x[xoff..xoff + BLOCK_DIM * m];
            for i in 0..BLOCK_DIM {
                for cc in 0..BLOCK_DIM {
                    let av = b.get(i, cc);
                    for j in 0..m {
                        acc[i * m + j] += av * xs[cc * m + j];
                    }
                }
            }
        }
        let yo = bi * BLOCK_DIM * m - y_base;
        y[yo..yo + BLOCK_DIM * m].copy_from_slice(&acc);
    }
}

/// Serial GSPMV through the naive kernel (ablation baseline).
pub fn gspmv_serial_naive(a: &BcrsMatrix, x: &MultiVec, y: &mut MultiVec) {
    check_shapes(a, x, y);
    gspmv_rows_naive(a, x.as_slice(), y.as_mut_slice(), x.m(), 0..a.nb_rows());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block3;
    use crate::triplet::BlockTripletBuilder;

    /// Deterministic pseudo-random sparse SPD-ish test matrix.
    fn test_matrix(nb: usize, bandwidth: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(10.0));
            for d in 1..=bandwidth {
                if bi + d < nb {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = rng();
                    }
                    t.add_symmetric_pair(bi, bi + d, b);
                }
            }
        }
        t.build()
    }

    /// Approximate multivector equality: different kernels associate
    /// the per-block FMAs differently, so results differ at the last
    /// bit.
    fn assert_close(a: &MultiVec, b: &MultiVec, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}");
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (u - v).abs() <= 1e-12 * u.abs().max(v.abs()).max(1.0),
                "{ctx}: {u} vs {v}"
            );
        }
    }

    fn dense_mat_vec(dense: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
        (0..n).map(|i| (0..n).map(|j| dense[i * n + j] * x[j]).sum()).collect()
    }

    fn pseudo_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = test_matrix(7, 2);
        let n = a.n_rows();
        let dense = a.to_dense();
        let x = pseudo_vec(n, 42);
        let mut y = vec![0.0; n];
        spmv_serial(&a, &x, &mut y);
        let want = dense_mat_vec(&dense, n, &x);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn gspmv_each_column_matches_spmv() {
        let a = test_matrix(9, 3);
        let n = a.n_rows();
        for &m in &[1usize, 2, 3, 4, 5, 8, 12, 16, 17, 24, 32, 33] {
            let mut x = MultiVec::zeros(n, m);
            for j in 0..m {
                x.set_column(j, &pseudo_vec(n, 1000 + j as u64));
            }
            let mut y = MultiVec::zeros(n, m);
            gspmv_serial(&a, &x, &mut y);
            for j in 0..m {
                let mut yj = vec![0.0; n];
                spmv_serial(&a, &x.column(j), &mut yj);
                let got = y.column(j);
                for (g, w) in got.iter().zip(&yj) {
                    assert!((g - w).abs() < 1e-12, "m={m} col={j}");
                }
            }
        }
    }

    #[test]
    fn generic_and_specialized_kernels_agree() {
        let a = test_matrix(11, 4);
        let n = a.n_rows();
        for &m in SPECIALIZED_M {
            let mut x = MultiVec::zeros(n, m);
            for j in 0..m {
                x.set_column(j, &pseudo_vec(n, 7 + j as u64));
            }
            let mut y1 = MultiVec::zeros(n, m);
            let mut y2 = MultiVec::zeros(n, m);
            gspmv_serial(&a, &x, &mut y1);
            gspmv_serial_generic(&a, &x, &mut y2);
            assert_close(&y1, &y2, &format!("m={m}"));
        }
    }

    #[test]
    fn naive_strip_mined_and_specialized_all_agree() {
        let a = test_matrix(9, 3);
        let n = a.n_rows();
        // Sizes exercising every strip combination: 8s, 4s, and tails.
        for m in [1usize, 3, 5, 6, 7, 9, 11, 13, 15, 17, 20, 23] {
            let mut x = MultiVec::zeros(n, m);
            for j in 0..m {
                x.set_column(j, &pseudo_vec(n, 31 + j as u64));
            }
            let mut y1 = MultiVec::zeros(n, m);
            let mut y2 = MultiVec::zeros(n, m);
            let mut y3 = MultiVec::zeros(n, m);
            gspmv_serial(&a, &x, &mut y1);
            gspmv_serial_generic(&a, &x, &mut y2);
            gspmv_serial_naive(&a, &x, &mut y3);
            assert_close(&y1, &y2, &format!("m={m} generic"));
            assert_close(&y1, &y3, &format!("m={m} naive"));
        }
    }

    #[test]
    fn every_available_backend_agrees_with_scalar() {
        let a = test_matrix(13, 5);
        let n = a.n_rows();
        for m in [1usize, 4, 7, 8, 16, 19, 32] {
            let mut x = MultiVec::zeros(n, m);
            for j in 0..m {
                x.set_column(j, &pseudo_vec(n, 53 + j as u64));
            }
            let mut want = MultiVec::zeros(n, m);
            gspmv_serial_with(KernelKind::Scalar, &a, &x, &mut want);
            for kind in KernelKind::ALL {
                if !backend::backend_available(kind) {
                    continue;
                }
                let mut got = MultiVec::zeros(n, m);
                gspmv_serial_with(kind, &a, &x, &mut got);
                assert_close(&want, &got, &format!("m={m} {:?}", kind));
                // And the chunked driver stays bitwise within a kind.
                let mut chunked = MultiVec::zeros(n, m);
                gspmv_chunked_with(kind, &a, &x, &mut chunked, 3);
                assert_eq!(got, chunked, "m={m} {:?} chunked", kind);
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let a = test_matrix(500, 6);
        let n = a.n_rows();
        let m = 8;
        let mut x = MultiVec::zeros(n, m);
        for j in 0..m {
            x.set_column(j, &pseudo_vec(n, 99 + j as u64));
        }
        let mut y1 = MultiVec::zeros(n, m);
        let mut y2 = MultiVec::zeros(n, m);
        gspmv_serial(&a, &x, &mut y1);
        gspmv(&a, &x, &mut y2);
        assert_eq!(y1, y2);

        let xv = pseudo_vec(n, 5);
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        spmv_serial(&a, &xv, &mut z1);
        spmv(&a, &xv, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn gspmv_overwrites_stale_output() {
        let a = test_matrix(4, 1);
        let n = a.n_rows();
        let x = MultiVec::zeros(n, 4);
        let mut y = MultiVec::zeros(n, 4);
        y.fill(123.0);
        gspmv_serial(&a, &x, &mut y);
        assert_eq!(y.max_abs(), 0.0);
    }

    #[test]
    fn balanced_chunks_cover_all_rows_exactly_once() {
        let a = test_matrix(103, 5);
        for &nc in &[1usize, 2, 3, 7, 16, 200] {
            let chunks = balanced_row_chunks(&a, nc);
            let mut next = 0;
            for c in &chunks {
                assert_eq!(c.start, next);
                assert!(c.end > c.start || chunks.len() == 1);
                next = c.end;
            }
            assert_eq!(next, a.nb_rows());
            assert!(chunks.len() <= nc.max(1));
        }
    }

    #[test]
    fn balanced_chunks_have_balanced_nnz() {
        let a = test_matrix(400, 8);
        let chunks = balanced_row_chunks(&a, 4);
        let nnz: Vec<usize> = chunks
            .iter()
            .map(|r| a.row_ptr()[r.end] - a.row_ptr()[r.start])
            .collect();
        let avg = a.nnz_blocks() as f64 / nnz.len() as f64;
        for v in &nnz {
            assert!((*v as f64) < 1.8 * avg, "imbalanced: {nnz:?}");
        }
    }

    #[test]
    fn empty_rows_are_handled() {
        // A matrix with some completely empty block rows.
        let mut t = BlockTripletBuilder::square(5);
        t.add(0, 0, Block3::IDENTITY);
        t.add(4, 4, Block3::scaled_identity(2.0));
        let a = t.build();
        let x = MultiVec::from_flat(15, 2, vec![1.0; 30]);
        let mut y = MultiVec::zeros(15, 2);
        gspmv_serial(&a, &x, &mut y);
        assert_eq!(y.get(0, 0), 1.0);
        assert_eq!(y.get(3, 0), 0.0); // empty row 1
        assert_eq!(y.get(12, 1), 2.0);
    }

    #[test]
    fn rectangular_gspmv() {
        let mut t = BlockTripletBuilder::new(2, 3);
        t.add(0, 2, Block3::IDENTITY);
        t.add(1, 0, Block3::scaled_identity(3.0));
        let a = t.build();
        let x = MultiVec::from_flat(9, 1, (1..=9).map(|v| v as f64).collect());
        let mut y = MultiVec::zeros(6, 1);
        gspmv_serial(&a, &x, &mut y);
        assert_eq!(y.column(0), vec![7.0, 8.0, 9.0, 3.0, 6.0, 9.0]);
    }
}
