//! Row-major multivectors: a block of `m` vectors of scalar length `n`.
//!
//! The paper stores the `m` right-hand-side vectors row-major — all `m`
//! values belonging to one scalar row are contiguous — so that the GSPMV
//! inner loop streams unit-stride through both `X` and `Y` (§IV-A1).

use std::ops::Range;

/// The column counts with monomorphized fast paths, shared by the GSPMV
/// kernels and the dense multivector ops below. Widths outside this set
/// fall back to generic (markedly slower) loops, so width-choosing
/// layers — the solve service's batcher in particular — should snap to
/// a member of this set, preferably by querying
/// `active_backend().specialized_widths()` (this constant is the same
/// grid, [`crate::backend::WIDTH_GRID`], kept as a re-export so the
/// grids cannot drift).
pub const SPECIALIZED_WIDTHS: [usize; 10] = crate::backend::WIDTH_GRID;

/// Dispatches a const-generic helper on [`SPECIALIZED_WIDTHS`] (the
/// same set the GSPMV kernels specialize), yielding `Some(result)` or
/// `None` for other sizes.
macro_rules! dispatch_square_m {
    ($m:expr, $f:ident, ($($args:expr),*)) => {
        match $m {
            1 => Some($f::<1>($($args),*)),
            2 => Some($f::<2>($($args),*)),
            4 => Some($f::<4>($($args),*)),
            8 => Some($f::<8>($($args),*)),
            12 => Some($f::<12>($($args),*)),
            16 => Some($f::<16>($($args),*)),
            24 => Some($f::<24>($($args),*)),
            32 => Some($f::<32>($($args),*)),
            42 => Some($f::<42>($($args),*)),
            48 => Some($f::<48>($($args),*)),
            _ => None,
        }
    };
}

/// Copies the row-major `M×M` coefficient block onto the stack so the
/// streaming loops below read it from registers/L1, not through a heap
/// pointer LLVM must re-load each row.
#[inline(always)]
fn tile<const M: usize>(c: &[f64]) -> [[f64; M]; M] {
    let mut t = [[0.0f64; M]; M];
    for k in 0..M {
        t[k].copy_from_slice(&c[k * M..(k + 1) * M]);
    }
    t
}

/// Monomorphized Gram kernel: fixed-width inner loops, accumulators in a
/// stack tile (a heap destination would force a store per row; the tile
/// lets LLVM keep the partial sums in vector registers across the
/// length-n stream).
fn gram_fixed<const M: usize>(a: &MultiVec, b: &MultiVec) -> Vec<f64> {
    let mut acc = [[0.0f64; M]; M];
    for (srow, orow) in a.data.chunks_exact(M).zip(b.data.chunks_exact(M)) {
        let o: &[f64; M] = orow.try_into().unwrap();
        for i in 0..M {
            let s = srow[i];
            for j in 0..M {
                acc[i][j] += s * o[j];
            }
        }
    }
    let mut g = vec![0.0f64; M * M];
    for i in 0..M {
        g[i * M..(i + 1) * M].copy_from_slice(&acc[i]);
    }
    g
}

/// Monomorphized `X += P·C` kernel.
fn add_mul_fixed<const M: usize>(x: &mut MultiVec, p: &MultiVec, c: &[f64]) {
    let ct = tile::<M>(c);
    for (drow, orow) in x.data.chunks_exact_mut(M).zip(p.data.chunks_exact(M)) {
        let d: &mut [f64; M] = drow.try_into().unwrap();
        let mut acc: [f64; M] = *d;
        for k in 0..M {
            let s = orow[k];
            for j in 0..M {
                acc[j] += s * ct[k][j];
            }
        }
        *d = acc;
    }
}

/// Monomorphized `P ← R + P·C` kernel.
fn assign_add_mul_fixed<const M: usize>(p: &mut MultiVec, r: &MultiVec, c: &[f64]) {
    let ct = tile::<M>(c);
    for (drow, orow) in p.data.chunks_exact_mut(M).zip(r.data.chunks_exact(M)) {
        let d: &mut [f64; M] = drow.try_into().unwrap();
        let mut tmp: [f64; M] = *TryInto::<&[f64; M]>::try_into(orow).unwrap();
        for k in 0..M {
            let s = d[k];
            for j in 0..M {
                tmp[j] += s * ct[k][j];
            }
        }
        *d = tmp;
    }
}

/// Monomorphized fused `R −= Q·C; G = RᵀR` kernel.
fn sub_mul_then_gram_fixed<const M: usize>(
    r: &mut MultiVec,
    q: &MultiVec,
    c: &[f64],
) -> Vec<f64> {
    let ct = tile::<M>(c);
    let mut acc = [[0.0f64; M]; M];
    for (drow, orow) in r.data.chunks_exact_mut(M).zip(q.data.chunks_exact(M)) {
        let d: &mut [f64; M] = drow.try_into().unwrap();
        for k in 0..M {
            let s = orow[k];
            for j in 0..M {
                d[j] -= s * ct[k][j];
            }
        }
        for i in 0..M {
            let s = d[i];
            for j in 0..M {
                acc[i][j] += s * d[j];
            }
        }
    }
    let mut g = vec![0.0f64; M * M];
    for i in 0..M {
        g[i * M..(i + 1) * M].copy_from_slice(&acc[i]);
    }
    g
}

/// `m` column vectors of length `n`, stored row-major: entry `(row, col)`
/// lives at `row * m + col`.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiVec {
    n: usize,
    m: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// An `n × m` zero multivector.
    pub fn zeros(n: usize, m: usize) -> Self {
        MultiVec { n, m, data: vec![0.0; n * m] }
    }

    /// Builds from a flat row-major buffer of length `n·m`.
    pub fn from_flat(n: usize, m: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * m, "flat buffer length mismatch");
        MultiVec { n, m, data }
    }

    /// Builds an `n × m` multivector from `m` column slices.
    pub fn from_columns(columns: &[&[f64]]) -> Self {
        let m = columns.len();
        assert!(m > 0, "at least one column required");
        let n = columns[0].len();
        assert!(columns.iter().all(|c| c.len() == n), "column length mismatch");
        let mut mv = MultiVec::zeros(n, m);
        for (j, col) in columns.iter().enumerate() {
            mv.set_column(j, col);
        }
        mv
    }

    /// Builds a single-column multivector from a vector.
    pub fn from_vec(v: Vec<f64>) -> Self {
        let n = v.len();
        MultiVec { n, m: 1, data: v }
    }

    /// Scalar length of each column.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of columns.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the multivector, returning its flat row-major buffer
    /// without copying. For a width-1 multivector the buffer *is* the
    /// column, which is how gathered single columns hand off to
    /// scalar-vector call sites.
    #[inline]
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.n && col < self.m);
        self.data[row * self.m + col]
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        debug_assert!(row < self.n && col < self.m);
        &mut self.data[row * self.m + col]
    }

    /// The `m` values of scalar row `row`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.m..(row + 1) * self.m]
    }

    /// Mutable row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.m..(row + 1) * self.m]
    }

    /// Copies column `col` out to a new vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.copy_column_into(col, &mut out);
        out
    }

    /// Copies column `col` into a caller-provided buffer — the
    /// allocation-free form of [`MultiVec::column`] for per-iteration
    /// call sites.
    pub fn copy_column_into(&self, col: usize, out: &mut [f64]) {
        assert!(col < self.m);
        assert_eq!(out.len(), self.n);
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.m + col];
        }
    }

    /// Overwrites column `col` from a slice.
    pub fn set_column(&mut self, col: usize, values: &[f64]) {
        assert!(col < self.m);
        assert_eq!(values.len(), self.n);
        for (r, v) in values.iter().enumerate() {
            self.data[r * self.m + col] = *v;
        }
    }

    /// Fills every entry with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self ← self + alpha[j] · other` column-wise: each column `j` is
    /// scaled by its own coefficient. Shapes must match.
    pub fn axpy_columns(&mut self, alpha: &[f64], other: &MultiVec) {
        assert_eq!(self.shape(), other.shape());
        assert_eq!(alpha.len(), self.m);
        let m = self.m;
        for (drow, orow) in
            self.data.chunks_exact_mut(m).zip(other.data.chunks_exact(m))
        {
            for j in 0..m {
                drow[j] += alpha[j] * orow[j];
            }
        }
    }

    /// `self ← self + alpha · other` with one scalar for all columns.
    pub fn axpy(&mut self, alpha: f64, other: &MultiVec) {
        assert_eq!(self.shape(), other.shape());
        for (d, o) in self.data.iter_mut().zip(other.data.iter()) {
            *d += alpha * o;
        }
    }

    /// Scales each column `j` by `alpha[j]`.
    pub fn scale_columns(&mut self, alpha: &[f64]) {
        assert_eq!(alpha.len(), self.m);
        let m = self.m;
        for row in self.data.chunks_exact_mut(m) {
            for j in 0..m {
                row[j] *= alpha[j];
            }
        }
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for d in self.data.iter_mut() {
            *d *= alpha;
        }
    }

    /// Column-wise dot products: returns `[Σ_r self[r,j]·other[r,j]; m]`.
    pub fn dot_columns(&self, other: &MultiVec) -> Vec<f64> {
        assert_eq!(self.shape(), other.shape());
        let m = self.m;
        let mut dots = vec![0.0; m];
        for (srow, orow) in
            self.data.chunks_exact(m).zip(other.data.chunks_exact(m))
        {
            for j in 0..m {
                dots[j] += srow[j] * orow[j];
            }
        }
        dots
    }

    /// Column-wise Euclidean norms.
    pub fn norms(&self) -> Vec<f64> {
        self.dot_columns(self).into_iter().map(f64::sqrt).collect()
    }

    /// The Gram matrix `selfᵀ · other` as a row-major `m×m'` dense array.
    /// This is the small dense reduction inside block CG; its inner loop
    /// is strip-mined to fixed widths so it vectorizes (it runs
    /// `n·m·m'` multiply-adds — at `m = 16` that rivals the GSPMV cost,
    /// so it must run at vector rate).
    pub fn gram(&self, other: &MultiVec) -> Vec<f64> {
        assert_eq!(self.n, other.n);
        let (ma, mb) = (self.m, other.m);
        if ma == mb {
            if let Some(isa) = crate::backend::simd_dense_isa(ma) {
                return crate::simd::gram(isa, &self.data, &other.data, ma);
            }
            if let Some(g) = dispatch_square_m!(ma, gram_fixed, (self, other)) {
                return g;
            }
        }
        let mut g = vec![0.0; ma * mb];
        for (srow, orow) in
            self.data.chunks_exact(ma).zip(other.data.chunks_exact(mb))
        {
            for i in 0..ma {
                let s = srow[i];
                axpy_strips(&mut g[i * mb..(i + 1) * mb], s, orow);
            }
        }
        g
    }

    /// `self ← self + other · C` where `C` is a row-major `m'×m` dense
    /// coefficient matrix (the block-CG update `X ← X + P·α`).
    pub fn add_mul_dense(&mut self, other: &MultiVec, c: &[f64]) {
        assert_eq!(self.n, other.n);
        assert_eq!(c.len(), other.m * self.m);
        let (m, mo) = (self.m, other.m);
        if m == mo {
            if let Some(isa) = crate::backend::simd_dense_isa(m) {
                crate::simd::add_mul(isa, &mut self.data, &other.data, c, m);
                return;
            }
            if dispatch_square_m!(m, add_mul_fixed, (self, other, c)).is_some() {
                return;
            }
        }
        for (drow, orow) in
            self.data.chunks_exact_mut(m).zip(other.data.chunks_exact(mo))
        {
            for k in 0..mo {
                let s = orow[k];
                if s != 0.0 {
                    axpy_strips(drow, s, &c[k * m..(k + 1) * m]);
                }
            }
        }
    }

    /// Fused block-CG residual update: `self ← self − other·C`, returning
    /// the Gram matrix `selfᵀ·self` of the *updated* residual — one pass
    /// over memory instead of two (the update and the reduction both
    /// stream `n×m` data, so fusing halves the dominant traffic).
    pub fn sub_mul_dense_then_gram(
        &mut self,
        other: &MultiVec,
        c: &[f64],
    ) -> Vec<f64> {
        assert_eq!(self.shape(), other.shape());
        let m = self.m;
        assert_eq!(c.len(), m * m);
        if let Some(isa) = crate::backend::simd_dense_isa(m) {
            return crate::simd::sub_mul_gram(
                isa,
                &mut self.data,
                &other.data,
                c,
                m,
            );
        }
        if let Some(g) =
            dispatch_square_m!(m, sub_mul_then_gram_fixed, (self, other, c))
        {
            return g;
        }
        let mut g = vec![0.0; m * m];
        for (drow, orow) in
            self.data.chunks_exact_mut(m).zip(other.data.chunks_exact(m))
        {
            for k in 0..m {
                let s = orow[k];
                if s != 0.0 {
                    for (d, cv) in drow.iter_mut().zip(&c[k * m..(k + 1) * m]) {
                        *d -= s * cv;
                    }
                }
            }
            for i in 0..m {
                let s = drow[i];
                axpy_strips(&mut g[i * m..(i + 1) * m], s, drow);
            }
        }
        g
    }

    /// `self ← other + self · C` in-place variant used for the block-CG
    /// search-direction update `P ← R + P·β`.
    pub fn assign_add_mul_dense(&mut self, other: &MultiVec, c: &[f64]) {
        assert_eq!(self.shape(), other.shape());
        let m = self.m;
        assert_eq!(c.len(), m * m);
        if let Some(isa) = crate::backend::simd_dense_isa(m) {
            crate::simd::assign_add_mul(isa, &mut self.data, &other.data, c, m);
            return;
        }
        if dispatch_square_m!(m, assign_add_mul_fixed, (self, other, c)).is_some() {
            return;
        }
        let mut tmp = vec![0.0; m];
        for (drow, orow) in
            self.data.chunks_exact_mut(m).zip(other.data.chunks_exact(m))
        {
            tmp.copy_from_slice(orow);
            for k in 0..m {
                let s = drow[k];
                if s != 0.0 {
                    axpy_strips(&mut tmp, s, &c[k * m..(k + 1) * m]);
                }
            }
            drow.copy_from_slice(&tmp);
        }
    }

    /// Gathers the listed columns into a packed `n × cols.len()`
    /// multivector (allocating form of
    /// [`MultiVec::gather_columns_into`]).
    pub fn gather_columns(&self, cols: &[usize]) -> MultiVec {
        let mut out = MultiVec::zeros(self.n, cols.len());
        self.gather_columns_into(cols, &mut out);
        out
    }

    /// Gathers the listed columns into a caller-provided multivector of
    /// shape `n × cols.len()` — the allocation-free form used by
    /// per-step call sites (the MRHS driver) and the solve-service
    /// batcher. Duplicate sources are permitted (a gather only reads).
    pub fn gather_columns_into(&self, cols: &[usize], dst: &mut MultiVec) {
        assert_eq!(dst.n, self.n, "gather_columns: row-count mismatch");
        assert_eq!(dst.m, cols.len(), "gather_columns: width mismatch");
        for &c in cols {
            assert!(c < self.m, "gather_columns: column {c} out of range");
        }
        let (ms, md) = (self.m, dst.m);
        for (drow, srow) in
            dst.data.chunks_exact_mut(md).zip(self.data.chunks_exact(ms))
        {
            for (d, &c) in drow.iter_mut().zip(cols) {
                *d = srow[c];
            }
        }
    }

    /// Scatters `src`'s columns into the listed columns of `self`
    /// (`self[:, cols[i]] ← src[:, i]`). `cols` must be duplicate-free
    /// (debug-asserted): aliased destinations would make the result
    /// depend on the scatter order.
    pub fn scatter_columns(&mut self, cols: &[usize], src: &MultiVec) {
        assert_eq!(src.n, self.n, "scatter_columns: row-count mismatch");
        assert_eq!(src.m, cols.len(), "scatter_columns: width mismatch");
        for &c in cols {
            assert!(c < self.m, "scatter_columns: column {c} out of range");
        }
        debug_assert!(
            cols.iter().enumerate().all(|(i, a)| !cols[..i].contains(a)),
            "scatter_columns: duplicate destination column (aliasing)"
        );
        let (md, ms) = (self.m, src.m);
        for (drow, srow) in
            self.data.chunks_exact_mut(md).zip(src.data.chunks_exact(ms))
        {
            for (&c, s) in cols.iter().zip(srow) {
                drow[c] = *s;
            }
        }
    }

    /// Gathers the scalar-row range `rows` into a packed multivector
    /// (distributed halo exchange helper).
    pub fn gather_rows(&self, rows: Range<usize>) -> MultiVec {
        assert!(rows.end <= self.n);
        MultiVec {
            n: rows.len(),
            m: self.m,
            data: self.data[rows.start * self.m..rows.end * self.m].to_vec(),
        }
    }

    /// Gathers an arbitrary list of scalar rows into a packed multivector.
    pub fn gather_row_list(&self, rows: &[usize]) -> MultiVec {
        let mut out = MultiVec::zeros(rows.len(), self.m);
        for (dst, &src) in rows.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// `(n, m)` shape tuple.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |a, v| a.max(v.abs()))
    }
}

/// `dst += s·src` with fixed-width 8/4 strips plus a scalar tail so the
/// loop autovectorizes despite the runtime length — the workhorse of
/// [`MultiVec::gram`] and the dense block updates.
#[inline]
fn axpy_strips(dst: &mut [f64], s: f64, src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut j = 0;
    let m = dst.len();
    while j + 8 <= m {
        let sw: &[f64; 8] = src[j..j + 8].try_into().unwrap();
        let dw = &mut dst[j..j + 8];
        for (d, x) in dw.iter_mut().zip(sw) {
            *d += s * x;
        }
        j += 8;
    }
    while j + 4 <= m {
        let sw: &[f64; 4] = src[j..j + 4].try_into().unwrap();
        let dw = &mut dst[j..j + 4];
        for (d, x) in dw.iter_mut().zip(sw) {
            *d += s * x;
        }
        j += 4;
    }
    while j < m {
        dst[j] += s * src[j];
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let mv = MultiVec::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(mv.row(0), &[1., 2., 3.]);
        assert_eq!(mv.row(1), &[4., 5., 6.]);
        assert_eq!(mv.get(1, 2), 6.0);
        assert_eq!(mv.column(1), vec![2., 5.]);
    }

    #[test]
    fn from_columns_round_trip() {
        let c0 = [1.0, 2.0, 3.0];
        let c1 = [4.0, 5.0, 6.0];
        let mv = MultiVec::from_columns(&[&c0, &c1]);
        assert_eq!(mv.column(0), c0.to_vec());
        assert_eq!(mv.column(1), c1.to_vec());
    }

    #[test]
    fn dot_columns_matches_per_column() {
        let a = MultiVec::from_columns(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = MultiVec::from_columns(&[&[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.dot_columns(&b), vec![11.0, 6.0]);
    }

    #[test]
    fn axpy_columns_per_column_coefficients() {
        let mut a = MultiVec::from_columns(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = MultiVec::from_columns(&[&[1.0, 0.0], &[0.0, 1.0]]);
        a.axpy_columns(&[10.0, -1.0], &b);
        assert_eq!(a.column(0), vec![11.0, 1.0]);
        assert_eq!(a.column(1), vec![2.0, 1.0]);
    }

    #[test]
    fn gram_is_transpose_times_other() {
        let a = MultiVec::from_columns(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0]]);
        let g = a.gram(&a);
        // columns: a0 = (1,0,2), a1 = (0,1,1)
        assert_eq!(g, vec![5.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn add_mul_dense_matches_manual() {
        // X (3×2) += P (3×2) · C (2×2)
        let mut x = MultiVec::zeros(3, 2);
        let p = MultiVec::from_columns(&[&[1.0, 0.0, 1.0], &[0.0, 2.0, 0.0]]);
        let c = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        x.add_mul_dense(&p, &c);
        // col0 = 1*p0 + 3*p1, col1 = 2*p0 + 4*p1
        assert_eq!(x.column(0), vec![1.0, 6.0, 1.0]);
        assert_eq!(x.column(1), vec![2.0, 8.0, 2.0]);
    }

    #[test]
    fn assign_add_mul_dense_matches_manual() {
        // P ← R + P·β
        let mut p = MultiVec::from_columns(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = MultiVec::from_columns(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let beta = vec![2.0, 0.0, 0.0, 3.0];
        p.assign_add_mul_dense(&r, &beta);
        assert_eq!(p.column(0), vec![3.0, 1.0]);
        assert_eq!(p.column(1), vec![1.0, 4.0]);
    }

    #[test]
    fn gather_columns_packs_and_permutes() {
        let mv = MultiVec::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let g = mv.gather_columns(&[2, 0]);
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.column(0), vec![3., 6.]);
        assert_eq!(g.column(1), vec![1., 4.]);
        // Duplicate sources are fine for a gather.
        let g = mv.gather_columns(&[1, 1]);
        assert_eq!(g.column(0), g.column(1));
    }

    #[test]
    fn gather_columns_into_reuses_buffer() {
        let mv = MultiVec::from_flat(3, 2, (0..6).map(|v| v as f64).collect());
        let mut dst = MultiVec::zeros(3, 1);
        mv.gather_columns_into(&[1], &mut dst);
        assert_eq!(dst.as_slice(), &[1.0, 3.0, 5.0]);
        mv.gather_columns_into(&[0], &mut dst);
        assert_eq!(dst.as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn scatter_columns_round_trips_gather() {
        let src = MultiVec::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let cols = [4usize, 0, 2];
        let mut wide = MultiVec::zeros(2, 5);
        wide.scatter_columns(&cols, &src);
        let back = wide.gather_columns(&cols);
        assert_eq!(back, src);
        // Untouched columns stay zero.
        assert_eq!(wide.column(1), vec![0.0, 0.0]);
        assert_eq!(wide.column(3), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_columns_rejects_out_of_range() {
        let mv = MultiVec::zeros(2, 2);
        mv.gather_columns(&[2]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "aliasing")]
    fn scatter_columns_rejects_duplicate_destinations() {
        let src = MultiVec::zeros(2, 2);
        let mut dst = MultiVec::zeros(2, 3);
        dst.scatter_columns(&[1, 1], &src);
    }

    #[test]
    fn gather_rows_packs_contiguously() {
        let mv = MultiVec::from_flat(4, 2, (0..8).map(|v| v as f64).collect());
        let g = mv.gather_rows(1..3);
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn gather_row_list_arbitrary_order() {
        let mv = MultiVec::from_flat(3, 1, vec![10.0, 20.0, 30.0]);
        let g = mv.gather_row_list(&[2, 0]);
        assert_eq!(g.as_slice(), &[30.0, 10.0]);
    }

    #[test]
    fn norms_and_scale() {
        let mut mv = MultiVec::from_columns(&[&[3.0, 4.0], &[0.0, 2.0]]);
        assert_eq!(mv.norms(), vec![5.0, 2.0]);
        mv.scale_columns(&[2.0, 0.5]);
        assert_eq!(mv.norms(), vec![10.0, 1.0]);
        mv.scale(0.0);
        assert_eq!(mv.max_abs(), 0.0);
    }
}
