//! Block-coordinate (triplet) assembly of BCRS matrices.
//!
//! Resistance-matrix assembly walks particle pairs and emits one 3×3
//! block per pair plus diagonal contributions; duplicate coordinates are
//! summed, matching the usual finite-element / particle assembly idiom.

use crate::bcrs::BcrsMatrix;
use crate::block::Block3;

/// An incremental builder accumulating `(block_row, block_col, Block3)`
/// triplets. Duplicates are summed when [`BlockTripletBuilder::build`] is
/// called.
#[derive(Clone, Debug)]
pub struct BlockTripletBuilder {
    nb_rows: usize,
    nb_cols: usize,
    entries: Vec<(u32, u32, Block3)>,
}

impl BlockTripletBuilder {
    /// Creates a builder for an `nb_rows × nb_cols` **block** matrix
    /// (scalar dimension is three times larger).
    pub fn new(nb_rows: usize, nb_cols: usize) -> Self {
        assert!(nb_rows <= u32::MAX as usize && nb_cols <= u32::MAX as usize);
        BlockTripletBuilder { nb_rows, nb_cols, entries: Vec::new() }
    }

    /// Creates a square builder.
    pub fn square(nb: usize) -> Self {
        Self::new(nb, nb)
    }

    /// Number of block rows.
    pub fn nb_rows(&self) -> usize {
        self.nb_rows
    }

    /// Number of block columns.
    pub fn nb_cols(&self) -> usize {
        self.nb_cols
    }

    /// Number of triplets pushed so far (duplicates not yet merged).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pre-allocates capacity for `n` additional triplets.
    pub fn reserve(&mut self, n: usize) {
        self.entries.reserve(n);
    }

    /// Adds `block` at `(bi, bj)`; contributions to the same coordinate
    /// accumulate.
    #[inline]
    pub fn add(&mut self, bi: usize, bj: usize, block: Block3) {
        debug_assert!(
            bi < self.nb_rows,
            "block row {bi} out of range {}",
            self.nb_rows
        );
        debug_assert!(
            bj < self.nb_cols,
            "block col {bj} out of range {}",
            self.nb_cols
        );
        self.entries.push((bi as u32, bj as u32, block));
    }

    /// Adds a symmetric pair contribution: `block` at `(bi, bj)` and its
    /// transpose at `(bj, bi)`.
    #[inline]
    pub fn add_symmetric_pair(&mut self, bi: usize, bj: usize, block: Block3) {
        self.add(bi, bj, block);
        self.add(bj, bi, block.transpose());
    }

    /// Sorts, merges duplicates, and produces the BCRS matrix.
    pub fn build(mut self) -> BcrsMatrix {
        // Sort by (row, col) so each block row is contiguous and ordered.
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut row_ptr = vec![0usize; self.nb_rows + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut blocks: Vec<Block3> = Vec::new();

        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, b)) = iter.next() {
            let mut acc = b;
            while let Some(&(r2, c2, b2)) = iter.peek() {
                if r2 == r && c2 == c {
                    acc += b2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(c);
            blocks.push(acc);
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.nb_rows {
            row_ptr[i + 1] += row_ptr[i];
        }

        BcrsMatrix::from_parts(self.nb_rows, self.nb_cols, row_ptr, col_idx, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::scaled_identity(1.0));
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 0, Block3::IDENTITY);
        let m = t.build();
        assert_eq!(m.nnz_blocks(), 2);
        assert_eq!(m.block_at(0, 0).unwrap().get(0, 0), 3.0);
        assert_eq!(m.block_at(1, 0).unwrap().get(2, 2), 1.0);
        assert!(m.block_at(0, 1).is_none());
    }

    #[test]
    fn rows_sorted_by_column() {
        let mut t = BlockTripletBuilder::square(1);
        t.add(0, 0, Block3::IDENTITY);
        let mut t2 = BlockTripletBuilder::square(3);
        t2.add(0, 2, Block3::IDENTITY);
        t2.add(0, 0, Block3::IDENTITY);
        t2.add(0, 1, Block3::IDENTITY);
        let m = t2.build();
        let (cols, _) = m.block_row(0);
        assert_eq!(cols, &[0, 1, 2]);
        drop(t);
    }

    #[test]
    fn symmetric_pair_adds_transpose() {
        let b =
            Block3::from_rows([[0.0, 1.0, 0.0], [0.0, 0.0, 0.0], [2.0, 0.0, 0.0]]);
        let mut t = BlockTripletBuilder::square(2);
        t.add_symmetric_pair(0, 1, b);
        let m = t.build();
        assert_eq!(*m.block_at(0, 1).unwrap(), b);
        assert_eq!(*m.block_at(1, 0).unwrap(), b.transpose());
    }

    #[test]
    fn empty_builder_builds_empty_matrix() {
        let m = BlockTripletBuilder::square(4).build();
        assert_eq!(m.nnz_blocks(), 0);
        assert_eq!(m.nb_rows(), 4);
    }

    #[test]
    fn rectangular_shape_is_preserved() {
        let mut t = BlockTripletBuilder::new(2, 5);
        t.add(1, 4, Block3::IDENTITY);
        let m = t.build();
        assert_eq!(m.nb_rows(), 2);
        assert_eq!(m.nb_cols(), 5);
    }
}
