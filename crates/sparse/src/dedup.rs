//! Block-value deduplication: BCRS with a unique-block pool.
//!
//! Dynamical-simulation matrices frequently repeat block values — near
//! lattices produce translation-invariant couplings, far-field
//! truncation produces many identical (often zero-padded or scaled
//! identity) blocks, and symmetric pair insertion duplicates every
//! diagonal-symmetric block. [`DedupBcrs`] stores each *distinct* 3×3
//! block once in a pool and keeps a `u32` pool index per entry, so a
//! repeated-structure matrix streams 8 B of indices per block instead
//! of 72 B of values; Eq. 8's matrix term shrinks by the dedup ratio
//! and GSPMV's bandwidth bound moves accordingly (`mrhs-perfmodel`
//! accounts for this in `dedup_memory_traffic_exact`).
//!
//! **Bit-exactness.** Blocks are keyed on the raw bit patterns of their
//! nine entries (`f64::to_bits`), never on numeric equality: `0.0` and
//! `-0.0` stay distinct, NaNs compare by payload, and expanding the
//! pool back out ([`DedupBcrs::to_bcrs`]) reproduces the original
//! blocks bit-for-bit. The GSPMV entry points run the *same* row
//! kernels as full storage (via the pool-indirect
//! [`crate::gspmv::BlockGet`] fetch), in the same order — the dedup
//! result is bitwise identical to the full-storage result under every
//! backend, which the oracle harness pins by putting both in one
//! bitwise group.
//!
//! **Opportunistic construction.** Deduplication only pays when blocks
//! actually repeat; [`DedupBcrs::try_from_bcrs`] builds the pool and
//! keeps it only when `unique/total` clears a threshold
//! ([`DEDUP_DEFAULT_MAX_RATIO`]), otherwise callers stay on plain
//! [`BcrsMatrix`]. The indirection costs one extra indexed load per
//! block; at ratios near 1 that is pure overhead, at small ratios the
//! pool lives in cache and the value stream disappears.

use crate::backend::{self, KernelBackend, KernelKind};
use crate::bcrs::BcrsMatrix;
use crate::block::Block3;
use crate::gspmv::{balanced_chunks_from_parts, check_mv_shapes, BlockGet};
use crate::instrument;
use crate::multivec::MultiVec;
use crate::BLOCK_DIM;
use std::collections::HashMap;
use std::ops::Range;

/// Keep the dedup form only when `unique_blocks / nnz_blocks` is at or
/// below this. At 0.5 the value stream is at least halved, which
/// comfortably covers the extra 4 B/block index stream (8 B vs 4 B of
/// indices against ≥36 B/block of values saved) plus the indirect-load
/// overhead.
pub const DEDUP_DEFAULT_MAX_RATIO: f64 = 0.5;

/// BCRS structure with deduplicated block values: per-entry `u32`
/// indices into a pool of unique [`Block3`]s.
#[derive(Clone, Debug)]
pub struct DedupBcrs {
    nb_rows: usize,
    nb_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    pool_idx: Vec<u32>,
    pool: Vec<Block3>,
}

/// The pool-indirect block fetch: entry `k`'s block is
/// `pool[pool_idx[k]]`. Implements [`BlockGet`] so the full-storage row
/// kernels (scalar, generic, and SIMD) run unchanged over dedup
/// storage.
#[derive(Clone, Copy)]
pub(crate) struct PoolBlocks<'a> {
    pool: &'a [Block3],
    idx: &'a [u32],
}

impl BlockGet for PoolBlocks<'_> {
    #[inline(always)]
    fn block(&self, k: usize) -> &Block3 {
        &self.pool[self.idx[k] as usize]
    }
}

impl DedupBcrs {
    /// Builds the dedup form unconditionally. Pool order is
    /// first-appearance order (deterministic for a given matrix).
    pub fn from_bcrs(a: &BcrsMatrix) -> DedupBcrs {
        let blocks = a.blocks();
        let mut pool: Vec<Block3> = Vec::new();
        let mut pool_idx: Vec<u32> = Vec::with_capacity(blocks.len());
        let mut seen: HashMap<[u64; 9], u32> = HashMap::new();
        for b in blocks {
            let mut key = [0u64; 9];
            for (k, v) in key.iter_mut().zip(&b.0) {
                *k = v.to_bits();
            }
            let next = pool.len() as u32;
            let id = *seen.entry(key).or_insert_with(|| {
                pool.push(*b);
                next
            });
            pool_idx.push(id);
        }
        DedupBcrs {
            nb_rows: a.nb_rows(),
            nb_cols: a.nb_cols(),
            row_ptr: a.row_ptr().to_vec(),
            col_idx: a.col_idx().to_vec(),
            pool_idx,
            pool,
        }
    }

    /// Builds the dedup form only when it pays: returns `None` when the
    /// dedup ratio exceeds `max_ratio` (use
    /// [`DEDUP_DEFAULT_MAX_RATIO`] unless you have a reason not to).
    pub fn try_from_bcrs(a: &BcrsMatrix, max_ratio: f64) -> Option<DedupBcrs> {
        let d = DedupBcrs::from_bcrs(a);
        (d.dedup_ratio() <= max_ratio).then_some(d)
    }

    /// Expands back to full storage; blocks are bit-identical to the
    /// matrix this was built from.
    pub fn to_bcrs(&self) -> BcrsMatrix {
        let blocks: Vec<Block3> =
            self.pool_idx.iter().map(|&i| self.pool[i as usize]).collect();
        BcrsMatrix::from_parts(
            self.nb_rows,
            self.nb_cols,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            blocks,
        )
    }

    /// `unique_blocks / nnz_blocks` — 1.0 means nothing repeats (and
    /// also covers the empty matrix).
    pub fn dedup_ratio(&self) -> f64 {
        if self.pool_idx.is_empty() {
            1.0
        } else {
            self.pool.len() as f64 / self.pool_idx.len() as f64
        }
    }

    /// Block rows.
    pub fn nb_rows(&self) -> usize {
        self.nb_rows
    }

    /// Block columns.
    pub fn nb_cols(&self) -> usize {
        self.nb_cols
    }

    /// Scalar rows.
    pub fn n_rows(&self) -> usize {
        self.nb_rows * BLOCK_DIM
    }

    /// Scalar columns.
    pub fn n_cols(&self) -> usize {
        self.nb_cols * BLOCK_DIM
    }

    /// Stored (structural) blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.pool_idx.len()
    }

    /// Unique blocks in the pool.
    pub fn unique_blocks(&self) -> usize {
        self.pool.len()
    }

    /// Bytes streamed per multiply: 4 B row pointer per block row, 8 B
    /// of indices per entry (column + pool), 72 B per *unique* block —
    /// the dedup counterpart of [`BcrsMatrix::stream_bytes`].
    pub fn stream_bytes(&self) -> usize {
        4 * self.nb_rows + 8 * self.pool_idx.len() + 72 * self.pool.len()
    }

    /// CSR row pointers.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Block-column indices.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The unique-block pool.
    pub fn pool(&self) -> &[Block3] {
        &self.pool
    }

    /// Per-entry pool indices.
    pub fn pool_indices(&self) -> &[u32] {
        &self.pool_idx
    }

    /// The [`BlockGet`] view the kernels consume.
    pub(crate) fn pool_blocks(&self) -> PoolBlocks<'_> {
        PoolBlocks { pool: &self.pool, idx: &self.pool_idx }
    }

    /// Counts one dedup GSPMV call under `gspmv_dedup/m{m}/…` (with the
    /// reduced matrix stream) and opens its span.
    fn instrument_dedup(
        &self,
        m: usize,
        b: &dyn KernelBackend,
    ) -> crate::instrument::KernelGuard {
        instrument::record_kernel_call(
            "gspmv_dedup",
            m,
            self.nb_rows as u64,
            self.pool_idx.len() as u64,
            self.stream_bytes() as u64,
        );
        instrument::record_backend(b.name());
        instrument::kernel_span("gspmv_dedup", m)
    }

    /// Serial GSPMV `Y = A·X` through the active backend. Bitwise
    /// identical to [`crate::gspmv::gspmv_serial`] on the expanded
    /// matrix.
    pub fn gspmv_serial(&self, x: &MultiVec, y: &mut MultiVec) {
        self.gspmv_serial_with_backend(backend::active_backend(), x, y);
    }

    /// Serial GSPMV through an explicitly chosen backend kind.
    ///
    /// # Panics
    /// When `kind` is not available on this host (SIMD without a vector
    /// ISA) — gate with [`backend::backend_available`].
    pub fn gspmv_serial_with(
        &self,
        kind: KernelKind,
        x: &MultiVec,
        y: &mut MultiVec,
    ) {
        let b = backend::backend_for(kind)
            .expect("requested kernel backend unavailable on this host");
        self.gspmv_serial_with_backend(b, x, y);
    }

    fn gspmv_serial_with_backend(
        &self,
        b: &dyn KernelBackend,
        x: &MultiVec,
        y: &mut MultiVec,
    ) {
        self.check_shapes(x, y);
        let _span = self.instrument_dedup(x.m(), b);
        b.gspmv_rows_dedup(
            self,
            x.as_slice(),
            y.as_mut_slice(),
            x.m(),
            0..self.nb_rows,
        );
    }

    /// Parallel GSPMV with the same thread-blocking (and the same
    /// serial-fallback threshold) as [`crate::gspmv::gspmv`]; bitwise
    /// identical to [`Self::gspmv_serial`] for any chunking.
    pub fn gspmv(&self, x: &MultiVec, y: &mut MultiVec) {
        self.check_shapes(x, y);
        let b = backend::active_backend();
        let _span = self.instrument_dedup(x.m(), b);
        let nthreads = rayon::current_num_threads();
        if nthreads <= 1 || self.pool_idx.len() < 1 << 14 {
            b.gspmv_rows_dedup(
                self,
                x.as_slice(),
                y.as_mut_slice(),
                x.m(),
                0..self.nb_rows,
            );
            return;
        }
        self.gspmv_chunked_impl(b, x, y, nthreads * 4);
    }

    /// Parallel GSPMV with an explicit chunk count (oracle entry point;
    /// bitwise identical to [`Self::gspmv_serial`] for every
    /// `nchunks`).
    pub fn gspmv_chunked(&self, x: &MultiVec, y: &mut MultiVec, nchunks: usize) {
        self.check_shapes(x, y);
        let b = backend::active_backend();
        let _span = self.instrument_dedup(x.m(), b);
        self.gspmv_chunked_impl(b, x, y, nchunks);
    }

    /// Chunked GSPMV through an explicitly chosen backend kind (panics
    /// when unavailable, like [`Self::gspmv_serial_with`]).
    pub fn gspmv_chunked_with(
        &self,
        kind: KernelKind,
        x: &MultiVec,
        y: &mut MultiVec,
        nchunks: usize,
    ) {
        let b = backend::backend_for(kind)
            .expect("requested kernel backend unavailable on this host");
        self.check_shapes(x, y);
        let _span = self.instrument_dedup(x.m(), b);
        self.gspmv_chunked_impl(b, x, y, nchunks);
    }

    fn gspmv_chunked_impl(
        &self,
        b: &dyn KernelBackend,
        x: &MultiVec,
        y: &mut MultiVec,
        nchunks: usize,
    ) {
        let m = x.m();
        let chunks = balanced_chunks_from_parts(
            &self.row_ptr,
            self.nb_rows,
            self.pool_idx.len(),
            nchunks,
        );
        let mut jobs: Vec<(Range<usize>, &mut [f64])> =
            Vec::with_capacity(chunks.len());
        let mut rest = y.as_mut_slice();
        for r in &chunks {
            let (head, tail) = rest.split_at_mut((r.end - r.start) * BLOCK_DIM * m);
            jobs.push((r.clone(), head));
            rest = tail;
        }
        let xs = x.as_slice();
        rayon::scope(|s| {
            for (rows, yslice) in jobs {
                s.spawn(move |_| b.gspmv_rows_dedup(self, xs, yslice, m, rows));
            }
        });
    }

    /// `y = A·x` (single vector) — the `m = 1` instantiation.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols(), "x length mismatch");
        assert_eq!(y.len(), self.n_rows(), "y length mismatch");
        backend::active_backend().gspmv_rows_dedup(self, x, y, 1, 0..self.nb_rows);
    }

    fn check_shapes(&self, x: &MultiVec, y: &MultiVec) {
        check_mv_shapes(self.n_rows(), self.n_cols(), x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gspmv::gspmv_serial;
    use crate::triplet::BlockTripletBuilder;

    /// A lattice-like matrix reusing a tiny set of coupling blocks.
    fn repeated_matrix(nb: usize) -> BcrsMatrix {
        let coupling = Block3::from_rows([
            [-1.0, 0.25, 0.0],
            [0.5, -1.0, 0.25],
            [0.0, 0.5, -1.0],
        ]);
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, coupling);
            }
        }
        t.build()
    }

    fn unique_matrix(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(1.0 + bi as f64));
        }
        t.build()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let a = repeated_matrix(20);
        let d = DedupBcrs::from_bcrs(&a);
        let back = d.to_bcrs();
        assert_eq!(back.row_ptr(), a.row_ptr());
        assert_eq!(back.col_idx(), a.col_idx());
        assert_eq!(back.blocks().len(), a.blocks().len());
        for (u, v) in a.blocks().iter().zip(back.blocks()) {
            for (x, y) in u.0.iter().zip(&v.0) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn signed_zero_blocks_stay_distinct() {
        let mut plus = Block3::ZERO;
        let mut minus = Block3::ZERO;
        plus.0[4] = 0.0;
        minus.0[4] = -0.0;
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, plus);
        t.add(1, 1, minus);
        let d = DedupBcrs::from_bcrs(&t.build());
        assert_eq!(d.unique_blocks(), 2, "-0.0 must not alias 0.0");
    }

    #[test]
    fn dedup_ratio_and_threshold() {
        // Chain: diagonal is one repeated block, couplings are one
        // repeated block + its transpose → 3 unique among ~3·nb.
        let a = repeated_matrix(40);
        let d = DedupBcrs::from_bcrs(&a);
        assert_eq!(d.unique_blocks(), 3);
        assert!(d.dedup_ratio() < 0.05);
        assert!(DedupBcrs::try_from_bcrs(&a, DEDUP_DEFAULT_MAX_RATIO).is_some());

        let u = unique_matrix(40);
        let du = DedupBcrs::from_bcrs(&u);
        assert_eq!(du.unique_blocks(), du.nnz_blocks());
        assert_eq!(du.dedup_ratio(), 1.0);
        assert!(DedupBcrs::try_from_bcrs(&u, DEDUP_DEFAULT_MAX_RATIO).is_none());
    }

    #[test]
    fn stream_bytes_shrink_with_sharing() {
        let a = repeated_matrix(50);
        let d = DedupBcrs::from_bcrs(&a);
        assert!(d.stream_bytes() < a.stream_bytes() / 4);
        // And never lie: recomputable from the counts.
        assert_eq!(
            d.stream_bytes(),
            4 * d.nb_rows() + 8 * d.nnz_blocks() + 72 * d.unique_blocks()
        );
    }

    #[test]
    fn gspmv_bitwise_matches_full_storage() {
        let a = repeated_matrix(60);
        let d = DedupBcrs::from_bcrs(&a);
        let n = a.n_rows();
        for m in [1usize, 4, 7, 8, 16] {
            let x = MultiVec::from_flat(
                n,
                m,
                (0..n * m).map(|v| ((v % 13) as f64) - 6.0).collect(),
            );
            let mut y_full = MultiVec::zeros(n, m);
            let mut y_dedup = MultiVec::zeros(n, m);
            gspmv_serial(&a, &x, &mut y_full);
            d.gspmv_serial(&x, &mut y_dedup);
            assert_eq!(y_full, y_dedup, "m={m}: dedup must be bit-identical");

            let mut y_chunked = MultiVec::zeros(n, m);
            d.gspmv_chunked(&x, &mut y_chunked, 3);
            assert_eq!(y_dedup, y_chunked, "m={m}: chunking must not change bits");

            let mut y_auto = MultiVec::zeros(n, m);
            d.gspmv(&x, &mut y_auto);
            assert_eq!(y_dedup, y_auto, "m={m}: auto must not change bits");
        }
    }

    #[test]
    fn forced_backends_match_their_full_storage_counterparts() {
        let a = repeated_matrix(30);
        let d = DedupBcrs::from_bcrs(&a);
        let n = a.n_rows();
        let m = 8;
        let x = MultiVec::from_flat(
            n,
            m,
            (0..n * m).map(|v| ((v % 11) as f64) - 5.0).collect(),
        );
        for kind in KernelKind::ALL {
            if !backend::backend_available(kind) {
                continue;
            }
            let mut y_full = MultiVec::zeros(n, m);
            let mut y_dedup = MultiVec::zeros(n, m);
            crate::gspmv::gspmv_serial_with(kind, &a, &x, &mut y_full);
            d.gspmv_serial_with(kind, &x, &mut y_dedup);
            assert_eq!(y_full, y_dedup, "kind={:?}", kind);
        }
    }

    #[test]
    fn spmv_matches_gspmv_column() {
        let a = repeated_matrix(25);
        let d = DedupBcrs::from_bcrs(&a);
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 19) as f64) - 9.0).collect();
        let mut y = vec![0.0; n];
        d.spmv(&x, &mut y);
        let xm = MultiVec::from_flat(n, 1, x);
        let mut ym = MultiVec::zeros(n, 1);
        d.gspmv_serial(&xm, &mut ym);
        assert_eq!(y, ym.into_flat());
    }
}
