//! Matrix summary statistics — the quantities of the paper's Table I.

/// The structural statistics the paper reports for its SD matrices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixStats {
    /// Scalar dimension `n`.
    pub n: usize,
    /// Block rows `nb = n/3`.
    pub nb: usize,
    /// Stored scalars `nnz`.
    pub nnz: usize,
    /// Stored blocks `nnzb`.
    pub nnzb: usize,
}

impl MatrixStats {
    /// Average stored blocks per block row, the density parameter of the
    /// performance model.
    pub fn blocks_per_row(&self) -> f64 {
        if self.nb == 0 {
            0.0
        } else {
            self.nnzb as f64 / self.nb as f64
        }
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} nb={} nnz={} nnzb={} nnzb/nb={:.1}",
            self.n,
            self.nb,
            self.nnz,
            self.nnzb,
            self.blocks_per_row()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_ratio() {
        let s = MatrixStats { n: 900, nb: 300, nnz: 9 * 1700, nnzb: 1700 };
        assert!((s.blocks_per_row() - 1700.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_density_is_zero() {
        let s = MatrixStats { n: 0, nb: 0, nnz: 0, nnzb: 0 };
        assert_eq!(s.blocks_per_row(), 0.0);
    }

    #[test]
    fn display_formats_all_fields() {
        let s = MatrixStats { n: 9, nb: 3, nnz: 18, nnzb: 2 };
        let out = format!("{s}");
        assert!(out.contains("n=9") && out.contains("nnzb=2"));
    }
}
