//! Dense 3×3 blocks.
//!
//! Resistance matrices in Stokesian dynamics are block matrices whose
//! 3×3 blocks couple the translational degrees of freedom of a particle
//! pair. `Block3` stores one such block row-major in a flat `[f64; 9]`.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A dense 3×3 block stored row-major: entry `(i, j)` lives at `3*i + j`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Block3(pub [f64; 9]);

impl Block3 {
    /// The zero block.
    pub const ZERO: Block3 = Block3([0.0; 9]);

    /// The identity block.
    pub const IDENTITY: Block3 =
        Block3([1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);

    /// Builds a block from a row-major 2-D array.
    #[inline]
    pub fn from_rows(rows: [[f64; 3]; 3]) -> Self {
        Block3([
            rows[0][0], rows[0][1], rows[0][2], //
            rows[1][0], rows[1][1], rows[1][2], //
            rows[2][0], rows[2][1], rows[2][2],
        ])
    }

    /// `s · I`.
    #[inline]
    pub fn scaled_identity(s: f64) -> Self {
        Block3([s, 0.0, 0.0, 0.0, s, 0.0, 0.0, 0.0, s])
    }

    /// The dyadic (outer) product `a ⊗ b`.
    #[inline]
    pub fn outer(a: [f64; 3], b: [f64; 3]) -> Self {
        let mut m = [0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                m[3 * i + j] = a[i] * b[j];
            }
        }
        Block3(m)
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.0[3 * i + j]
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.0[3 * i + j]
    }

    /// The transposed block.
    #[inline]
    pub fn transpose(&self) -> Block3 {
        let a = &self.0;
        Block3([a[0], a[3], a[6], a[1], a[4], a[7], a[2], a[5], a[8]])
    }

    /// Matrix–vector product with a length-3 vector.
    #[inline]
    pub fn mul_vec(&self, x: [f64; 3]) -> [f64; 3] {
        let a = &self.0;
        [
            a[0] * x[0] + a[1] * x[1] + a[2] * x[2],
            a[3] * x[0] + a[4] * x[1] + a[5] * x[2],
            a[6] * x[0] + a[7] * x[1] + a[8] * x[2],
        ]
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.0.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of absolute values of all entries (used for Gershgorin bounds).
    pub fn abs_sum(&self) -> f64 {
        self.0.iter().map(|v| v.abs()).sum()
    }

    /// Row-wise absolute sums.
    pub fn row_abs_sums(&self) -> [f64; 3] {
        let a = &self.0;
        [
            a[0].abs() + a[1].abs() + a[2].abs(),
            a[3].abs() + a[4].abs() + a[5].abs(),
            a[6].abs() + a[7].abs() + a[8].abs(),
        ]
    }

    /// Trace of the block.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.0[0] + self.0[4] + self.0[8]
    }

    /// Whether the block is (exactly) symmetric.
    pub fn is_symmetric(&self) -> bool {
        let a = &self.0;
        a[1] == a[3] && a[2] == a[6] && a[5] == a[7]
    }

    /// Whether the block is symmetric within tolerance `tol` (absolute).
    pub fn is_symmetric_within(&self, tol: f64) -> bool {
        let a = &self.0;
        (a[1] - a[3]).abs() <= tol
            && (a[2] - a[6]).abs() <= tol
            && (a[5] - a[7]).abs() <= tol
    }
}

impl Default for Block3 {
    fn default() -> Self {
        Block3::ZERO
    }
}

impl Add for Block3 {
    type Output = Block3;
    #[inline]
    fn add(self, rhs: Block3) -> Block3 {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o += r;
        }
        Block3(out)
    }
}

impl AddAssign for Block3 {
    #[inline]
    fn add_assign(&mut self, rhs: Block3) {
        for (o, r) in self.0.iter_mut().zip(rhs.0.iter()) {
            *o += r;
        }
    }
}

impl Sub for Block3 {
    type Output = Block3;
    #[inline]
    fn sub(self, rhs: Block3) -> Block3 {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o -= r;
        }
        Block3(out)
    }
}

impl Neg for Block3 {
    type Output = Block3;
    #[inline]
    fn neg(self) -> Block3 {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = -*o;
        }
        Block3(out)
    }
}

impl Mul<f64> for Block3 {
    type Output = Block3;
    #[inline]
    fn mul(self, s: f64) -> Block3 {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o *= s;
        }
        Block3(out)
    }
}

impl Mul<Block3> for Block3 {
    type Output = Block3;
    /// Dense 3×3 matrix product.
    fn mul(self, rhs: Block3) -> Block3 {
        let mut out = [0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += self.get(i, k) * rhs.get(k, j);
                }
                out[3 * i + j] = acc;
            }
        }
        Block3(out)
    }
}

impl Index<(usize, usize)> for Block3 {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.0[3 * i + j]
    }
}

impl IndexMut<(usize, usize)> for Block3 {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.0[3 * i + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mul_vec_is_noop() {
        let v = [1.0, -2.0, 3.5];
        assert_eq!(Block3::IDENTITY.mul_vec(v), v);
    }

    #[test]
    fn transpose_involution() {
        let b =
            Block3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(b.transpose().transpose(), b);
    }

    #[test]
    fn transpose_swaps_entries() {
        let b =
            Block3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        let t = b.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get(i, j), b.get(j, i));
            }
        }
    }

    #[test]
    fn outer_product_symmetric_for_same_vector() {
        let e = [1.0, 2.0, 3.0];
        let b = Block3::outer(e, e);
        assert!(b.is_symmetric());
        assert_eq!(b.get(0, 1), 2.0);
        assert_eq!(b.get(2, 2), 9.0);
    }

    #[test]
    fn block_matmul_matches_manual() {
        let a =
            Block3::from_rows([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]]);
        let b =
            Block3::from_rows([[1.0, 1.0, 0.0], [0.0, 1.0, 0.0], [1.0, 0.0, 1.0]]);
        let c = a * b;
        // row 0: [1+2, 1, 2]
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 2), 2.0);
        // row 2: [4+5, 4, 5]
        assert_eq!(c.get(2, 0), 9.0);
        assert_eq!(c.get(2, 1), 4.0);
        assert_eq!(c.get(2, 2), 5.0);
    }

    #[test]
    fn scaled_identity_trace() {
        assert_eq!(Block3::scaled_identity(2.5).trace(), 7.5);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a =
            Block3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        let b = Block3::scaled_identity(0.5);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn row_abs_sums_with_negatives() {
        let b = Block3::from_rows([
            [-1.0, 2.0, -3.0],
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
        ]);
        assert_eq!(b.row_abs_sums(), [6.0, 0.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_identity() {
        assert!((Block3::IDENTITY.frobenius_norm() - 3f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn neg_negates_every_entry() {
        let b = Block3::from_rows([
            [1.0, -2.0, 3.0],
            [0.0, 4.0, 0.0],
            [5.0, 0.0, -6.0],
        ]);
        let n = -b;
        for i in 0..9 {
            assert_eq!(n.0[i], -b.0[i]);
        }
    }

    #[test]
    fn index_operators() {
        let mut b = Block3::ZERO;
        b[(1, 2)] = 7.0;
        assert_eq!(b[(1, 2)], 7.0);
        assert_eq!(b.get(1, 2), 7.0);
    }
}
