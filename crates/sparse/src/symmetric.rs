//! Symmetric-storage GSPMV — beyond the paper.
//!
//! The paper's kernels "do not exploit any symmetry in the matrices"
//! (§IV) even though SD resistance matrices are symmetric. Storing only
//! the diagonal and strictly-upper blocks halves the dominant memory
//! stream, moving the bandwidth bound of Eq. 8 accordingly: each stored
//! off-diagonal block now contributes to two output rows (`y_i += A·x_j`
//! and `y_j += Aᵀ·x_i`). The cost is scattered writes into `y`, which
//! serializes the kernel (no disjoint output windows), so this is an
//! ablation/extension rather than the default path.

use crate::bcrs::BcrsMatrix;
use crate::block::Block3;
use crate::multivec::MultiVec;
use crate::BLOCK_DIM;

/// A symmetric block matrix storing the diagonal plus the strictly
/// upper triangle in block-CSR layout.
#[derive(Clone, Debug)]
pub struct SymmetricBcrs {
    nb: usize,
    /// Diagonal blocks, one per block row.
    diag: Vec<Block3>,
    /// CSR structure of the strictly-upper blocks.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    blocks: Vec<Block3>,
}

impl SymmetricBcrs {
    /// Builds from a full symmetric matrix, verifying symmetry within
    /// `tol`. Returns `None` if `a` is not symmetric.
    pub fn from_full(a: &BcrsMatrix, tol: f64) -> Option<Self> {
        if a.nb_rows() != a.nb_cols() || !a.is_symmetric_within(tol) {
            return None;
        }
        let nb = a.nb_rows();
        let mut diag = vec![Block3::ZERO; nb];
        let mut row_ptr = vec![0usize; nb + 1];
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        for bi in 0..nb {
            let (cols, blks) = a.block_row(bi);
            for (c, b) in cols.iter().zip(blks) {
                let bj = *c as usize;
                if bj == bi {
                    diag[bi] = *b;
                } else if bj > bi {
                    col_idx.push(*c);
                    blocks.push(*b);
                }
            }
            row_ptr[bi + 1] = blocks.len();
        }
        Some(SymmetricBcrs { nb, diag, row_ptr, col_idx, blocks })
    }

    /// Block rows.
    pub fn nb_rows(&self) -> usize {
        self.nb
    }

    /// Stored blocks (diagonal + upper triangle).
    pub fn stored_blocks(&self) -> usize {
        self.nb + self.blocks.len()
    }

    /// Bytes streamed per multiply — roughly half the full-storage
    /// figure for matrices with many off-diagonal blocks.
    pub fn stream_bytes(&self) -> usize {
        self.stored_blocks() * 72 + self.blocks.len() * 4 + 4 * self.nb
    }

    /// `y = A·x` using symmetric storage.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nb * BLOCK_DIM);
        assert_eq!(y.len(), self.nb * BLOCK_DIM);
        // diagonal pass
        for (bi, d) in self.diag.iter().enumerate() {
            let xb = [x[3 * bi], x[3 * bi + 1], x[3 * bi + 2]];
            let v = d.mul_vec(xb);
            y[3 * bi..3 * bi + 3].copy_from_slice(&v);
        }
        // upper blocks: forward and transposed contribution
        for bi in 0..self.nb {
            let xb = [x[3 * bi], x[3 * bi + 1], x[3 * bi + 2]];
            let mut acc = [0.0f64; 3];
            for k in self.row_ptr[bi]..self.row_ptr[bi + 1] {
                let bj = self.col_idx[k] as usize;
                let b = &self.blocks[k];
                let xj = [x[3 * bj], x[3 * bj + 1], x[3 * bj + 2]];
                let f = b.mul_vec(xj);
                acc[0] += f[0];
                acc[1] += f[1];
                acc[2] += f[2];
                let t = b.transpose().mul_vec(xb);
                y[3 * bj] += t[0];
                y[3 * bj + 1] += t[1];
                y[3 * bj + 2] += t[2];
            }
            y[3 * bi] += acc[0];
            y[3 * bi + 1] += acc[1];
            y[3 * bi + 2] += acc[2];
        }
    }

    /// `Y = A·X` on row-major multivectors using symmetric storage.
    pub fn gspmv(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = x.m();
        assert_eq!(x.n(), self.nb * BLOCK_DIM);
        assert_eq!(y.shape(), x.shape());
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        // diagonal pass writes, off-diagonal passes accumulate
        for (bi, d) in self.diag.iter().enumerate() {
            block_mul_slab(d, &xs[3 * bi * m..], &mut ys[3 * bi * m..], m, true);
        }
        for bi in 0..self.nb {
            for k in self.row_ptr[bi]..self.row_ptr[bi + 1] {
                let bj = self.col_idx[k] as usize;
                let b = &self.blocks[k];
                // Strictly-upper storage guarantees bj > bi, so the two
                // output slabs can be split without overlap.
                debug_assert!(bj > bi);
                let (head, tail) = ys.split_at_mut(3 * bj * m);
                let yi = &mut head[3 * bi * m..(3 * bi + 3) * m];
                let yj = &mut tail[..3 * m];
                let xi = &xs[3 * bi * m..(3 * bi + 3) * m];
                let xj = &xs[3 * bj * m..(3 * bj + 3) * m];
                accumulate_block(b, xj, yi, m, false); // y_i += B·x_j
                accumulate_block(b, xi, yj, m, true); //  y_j += Bᵀ·x_i
            }
        }
    }
}

/// `y_slab (3×m) (+)= B·x_slab`, writing when `overwrite`.
fn block_mul_slab(b: &Block3, x: &[f64], y: &mut [f64], m: usize, overwrite: bool) {
    for i in 0..BLOCK_DIM {
        for j in 0..m {
            let mut acc = 0.0;
            for c in 0..BLOCK_DIM {
                acc += b.get(i, c) * x[c * m + j];
            }
            if overwrite {
                y[i * m + j] = acc;
            } else {
                y[i * m + j] += acc;
            }
        }
    }
}

/// `y_slab += B·x_slab` (or `Bᵀ·x_slab` when `transpose`).
fn accumulate_block(b: &Block3, x: &[f64], y: &mut [f64], m: usize, transpose: bool) {
    for i in 0..BLOCK_DIM {
        for c in 0..BLOCK_DIM {
            let a = if transpose { b.get(c, i) } else { b.get(i, c) };
            if a != 0.0 {
                let xr = &x[c * m..c * m + m];
                let yr = &mut y[i * m..i * m + m];
                for (yv, xv) in yr.iter_mut().zip(xr) {
                    *yv += a * xv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gspmv::{gspmv_serial, spmv_serial};
    use crate::triplet::BlockTripletBuilder;

    fn random_symmetric(nb: usize, seed: u64) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..nb {
            let mut d = Block3::ZERO;
            for v in d.0.iter_mut() {
                *v = next();
            }
            t.add(i, i, (d + d.transpose()) * 0.5 + Block3::scaled_identity(4.0));
            for off in 1..4 {
                if i + off < nb && next() > 0.0 {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = next();
                    }
                    t.add_symmetric_pair(i, i + off, b);
                }
            }
        }
        t.build()
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::IDENTITY);
        t.add(1, 1, Block3::IDENTITY);
        t.add(0, 1, Block3::scaled_identity(2.0)); // no transpose partner
        let a = t.build();
        assert!(SymmetricBcrs::from_full(&a, 1e-12).is_none());
    }

    #[test]
    fn stores_about_half_the_blocks() {
        let a = random_symmetric(40, 3);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let full = a.nnz_blocks();
        let half = s.stored_blocks();
        // exactly the diagonal plus half of the off-diagonal blocks
        assert_eq!(half, (full + a.nb_rows()) / 2, "{half} vs {full}");
        assert!(s.stream_bytes() < a.stream_bytes());
    }

    #[test]
    fn spmv_matches_full_storage() {
        let a = random_symmetric(30, 7);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_serial(&a, &x, &mut y1);
        s.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-10 * u.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn gspmv_matches_full_storage() {
        let a = random_symmetric(25, 11);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        for m in [1usize, 3, 8] {
            let x = MultiVec::from_flat(
                n,
                m,
                (0..n * m).map(|v| ((v * 7 % 23) as f64) - 11.0).collect(),
            );
            let mut y1 = MultiVec::zeros(n, m);
            let mut y2 = MultiVec::zeros(n, m);
            gspmv_serial(&a, &x, &mut y1);
            s.gspmv(&x, &mut y2);
            for (u, v) in y1.as_slice().iter().zip(y2.as_slice()) {
                assert!((u - v).abs() <= 1e-10 * u.abs().max(1.0), "m={m}");
            }
        }
    }

    #[test]
    fn diagonal_matrix_round_trip() {
        let a = BcrsMatrix::scaled_identity(6, 3.0);
        let s = SymmetricBcrs::from_full(&a, 0.0).unwrap();
        assert_eq!(s.stored_blocks(), 6);
        let x = vec![2.0; 18];
        let mut y = vec![0.0; 18];
        s.spmv(&x, &mut y);
        assert!(y.iter().all(|&v| (v - 6.0).abs() < 1e-14));
    }
}
