//! Symmetric-storage GSPMV — beyond the paper.
//!
//! The paper's kernels "do not exploit any symmetry in the matrices"
//! (§IV) even though SD resistance matrices are symmetric. Storing only
//! the diagonal and strictly-upper blocks halves the dominant memory
//! stream, moving the bandwidth bound of Eq. 8 accordingly: each stored
//! off-diagonal block now contributes to two output rows (`y_i += B·x_j`
//! and `y_j += Bᵀ·x_i`).
//!
//! The scattered `y_j` writes preclude the disjoint-output-window thread
//! blocking of [`crate::gspmv::gspmv`], so the parallel kernel here uses
//! a two-phase scheme instead:
//!
//! 1. **Compute** — block rows are chunked with balanced stored-block
//!    counts; each chunk writes its *direct* contributions (diagonal,
//!    forward, and transpose terms landing inside the chunk) straight
//!    into its disjoint window of `Y`, and accumulates transpose terms
//!    that land *below* the chunk into a thread-private slab covering
//!    rows `chunk.end..nb` (strictly-upper storage guarantees every
//!    scattered write goes downward).
//! 2. **Reduce** — the same disjoint windows of `Y` are re-dealt to the
//!    pool and each thread adds every slab's overlap with its window.
//!
//! Both phases are monomorphized over the same [`SPECIALIZED_M`] set as
//! the full-storage kernels, and the auto driver falls back to the
//! serial kernel below the same stored-block threshold as `gspmv()`.
//!
//! **Determinism.** The floating-point summation order — and therefore
//! the exact bits of `Y` — depends only on the chunk boundaries, never
//! on which thread runs which chunk (windows are disjoint and each
//! window adds the slabs in fixed chunk-ascending order). The auto
//! driver [`SymmetricBcrs::gspmv_parallel`] therefore derives its chunk
//! count from the *matrix* ([`SymmetricBcrs::canonical_chunk_count`]),
//! not from the pool width, so its output is bitwise identical across
//! thread counts and repeated runs. (Earlier revisions chunked by
//! `rayon::current_num_threads()`, which silently changed the rounding
//! with `RAYON_NUM_THREADS` — the oracle harness now pins this down.)
//!
//! [`SPECIALIZED_M`]: crate::gspmv::SPECIALIZED_M

use crate::bcrs::BcrsMatrix;
use crate::block::Block3;
use crate::multivec::MultiVec;
use crate::BLOCK_DIM;
use std::ops::Range;

/// A symmetric block matrix storing the diagonal plus the strictly
/// upper triangle in block-CSR layout.
#[derive(Clone, Debug)]
pub struct SymmetricBcrs {
    nb: usize,
    /// Diagonal blocks, one per block row.
    diag: Vec<Block3>,
    /// CSR structure of the strictly-upper blocks.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    blocks: Vec<Block3>,
}

impl SymmetricBcrs {
    /// Builds from a full symmetric matrix, verifying symmetry within
    /// `tol`. Returns `None` if `a` is not symmetric.
    pub fn from_full(a: &BcrsMatrix, tol: f64) -> Option<Self> {
        if a.nb_rows() != a.nb_cols() || !a.is_symmetric_within(tol) {
            return None;
        }
        let nb = a.nb_rows();
        let mut diag = vec![Block3::ZERO; nb];
        let mut row_ptr = vec![0usize; nb + 1];
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        for bi in 0..nb {
            let (cols, blks) = a.block_row(bi);
            for (c, b) in cols.iter().zip(blks) {
                let bj = *c as usize;
                if bj == bi {
                    diag[bi] = *b;
                } else if bj > bi {
                    col_idx.push(*c);
                    blocks.push(*b);
                }
            }
            row_ptr[bi + 1] = blocks.len();
        }
        Some(SymmetricBcrs { nb, diag, row_ptr, col_idx, blocks })
    }

    /// Block rows.
    pub fn nb_rows(&self) -> usize {
        self.nb
    }

    /// Scalar dimension `3·nb` (the matrix is square).
    pub fn n_rows(&self) -> usize {
        self.nb * BLOCK_DIM
    }

    /// Stored blocks (diagonal + upper triangle).
    pub fn stored_blocks(&self) -> usize {
        self.nb + self.blocks.len()
    }

    /// Bytes streamed per multiply — roughly half the full-storage
    /// figure for matrices with many off-diagonal blocks. This is the
    /// `s_a`-weighted matrix term of the paper's Eq. 8 with the reduced
    /// block count (72 B per stored block, 4 B per upper column index,
    /// 4 B per row pointer).
    pub fn stream_bytes(&self) -> usize {
        self.stored_blocks() * 72 + self.blocks.len() * 4 + 4 * self.nb
    }

    /// `y = A·x` using symmetric storage (serial).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nb * BLOCK_DIM);
        assert_eq!(y.len(), self.nb * BLOCK_DIM);
        // diagonal pass
        for (bi, d) in self.diag.iter().enumerate() {
            let xb = [x[3 * bi], x[3 * bi + 1], x[3 * bi + 2]];
            let v = d.mul_vec(xb);
            y[3 * bi..3 * bi + 3].copy_from_slice(&v);
        }
        // upper blocks: forward and transposed contribution
        for bi in 0..self.nb {
            let xb = [x[3 * bi], x[3 * bi + 1], x[3 * bi + 2]];
            let mut acc = [0.0f64; 3];
            for k in self.row_ptr[bi]..self.row_ptr[bi + 1] {
                let bj = self.col_idx[k] as usize;
                let b = &self.blocks[k];
                let xj = [x[3 * bj], x[3 * bj + 1], x[3 * bj + 2]];
                let f = b.mul_vec(xj);
                acc[0] += f[0];
                acc[1] += f[1];
                acc[2] += f[2];
                let t = b.transpose().mul_vec(xb);
                y[3 * bj] += t[0];
                y[3 * bj + 1] += t[1];
                y[3 * bj + 2] += t[2];
            }
            y[3 * bi] += acc[0];
            y[3 * bi + 1] += acc[1];
            y[3 * bi + 2] += acc[2];
        }
    }

    /// `y = A·x` on slices, parallel when worthwhile (the `m = 1`
    /// instantiation of the chunked driver). Like
    /// [`Self::gspmv_parallel`], the result is bitwise independent of
    /// the pool width.
    pub fn spmv_parallel(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nb * BLOCK_DIM);
        assert_eq!(y.len(), self.nb * BLOCK_DIM);
        if self.stored_blocks() < PARALLEL_THRESHOLD {
            self.spmv(x, y);
            return;
        }
        self.run_chunked(x, y, 1, self.canonical_chunk_count(), false);
    }

    /// Counts one symmetric-storage GSPMV call under `gspmv_sym/m{m}/…`
    /// and opens its `kernel/gspmv_sym/m{m}` span. Flops count every
    /// *application*: each stored off-diagonal block hits two output
    /// rows (forward and transposed), so the flop total equals the
    /// full-storage one while the matrix stream is roughly halved.
    fn instrument_sym(&self, m: usize) -> crate::instrument::KernelGuard {
        let applied = (self.nb + 2 * self.blocks.len()) as u64;
        crate::instrument::record_kernel_call(
            "gspmv_sym",
            m,
            self.nb as u64,
            applied,
            self.stream_bytes() as u64,
        );
        crate::instrument::record_backend(crate::backend::active_backend().name());
        crate::instrument::kernel_span("gspmv_sym", m)
    }

    /// `Y = A·X` on row-major multivectors using symmetric storage
    /// (serial, monomorphized over `X.m()`).
    pub fn gspmv(&self, x: &MultiVec, y: &mut MultiVec) {
        let _span = self.instrument_sym(x.m());
        self.gspmv_impl(x, y);
    }

    fn gspmv_impl(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = x.m();
        assert_eq!(x.n(), self.nb * BLOCK_DIM);
        assert_eq!(y.shape(), x.shape());
        // Serial = one chunk covering every row: all scattered writes
        // stay inside the window and the slab is empty.
        dispatch_sym_rows(
            self,
            x.as_slice(),
            y.as_mut_slice(),
            &mut [],
            self.nb,
            m,
            0..self.nb,
        );
    }

    /// Parallel `Y = A·X` with the same serial fallback threshold as
    /// the full-storage [`crate::gspmv::gspmv`].
    ///
    /// Both the fallback decision and the chunk count are pure
    /// functions of the matrix, so the output is **bitwise identical**
    /// across pool widths (`RAYON_NUM_THREADS` = 1, 2, 4, 8, …) and
    /// across repeated runs.
    pub fn gspmv_parallel(&self, x: &MultiVec, y: &mut MultiVec) {
        let _span = self.instrument_sym(x.m());
        if self.stored_blocks() < PARALLEL_THRESHOLD {
            self.gspmv_impl(x, y);
            return;
        }
        self.gspmv_chunked_impl(x, y, self.canonical_chunk_count());
    }

    /// The chunk count [`Self::gspmv_parallel`] uses above the serial
    /// threshold: a function of the stored-block count only, never of
    /// the pool width, so the parallel summation order is reproducible.
    pub fn canonical_chunk_count(&self) -> usize {
        self.stored_blocks().div_ceil(CHUNK_GRAIN).clamp(1, MAX_CHUNKS)
    }

    /// Parallel `Y = A·X` with an explicit chunk count — the entry
    /// point tests use to exercise the slab-and-reduce machinery for
    /// arbitrary chunkings. For a fixed `nchunks` the output is bitwise
    /// deterministic; *different* chunk counts round differently (they
    /// regroup the transpose-slab partial sums) and agree only within
    /// the kernel tolerance.
    pub fn gspmv_chunked(&self, x: &MultiVec, y: &mut MultiVec, nchunks: usize) {
        let _span = self.instrument_sym(x.m());
        self.gspmv_chunked_impl(x, y, nchunks);
    }

    fn gspmv_chunked_impl(&self, x: &MultiVec, y: &mut MultiVec, nchunks: usize) {
        let m = x.m();
        assert_eq!(x.n(), self.nb * BLOCK_DIM);
        assert_eq!(y.shape(), x.shape());
        if nchunks <= 1 || self.nb == 0 {
            self.gspmv_impl(x, y);
            return;
        }
        self.run_chunked(x.as_slice(), y.as_mut_slice(), m, nchunks, false);
    }

    /// Pool-free execution of the *identical* chunk schedule as
    /// [`Self::gspmv_chunked`]: phase-1 jobs in chunk order, then
    /// phase-2 jobs in chunk order, all on the calling thread. Exists
    /// so the oracle harness can prove the parallel result depends only
    /// on the chunking, not on execution interleaving — the two must
    /// match bitwise for every `nchunks`.
    pub fn gspmv_chunked_sequential(
        &self,
        x: &MultiVec,
        y: &mut MultiVec,
        nchunks: usize,
    ) {
        let m = x.m();
        assert_eq!(x.n(), self.nb * BLOCK_DIM);
        assert_eq!(y.shape(), x.shape());
        if nchunks <= 1 || self.nb == 0 {
            self.gspmv_impl(x, y);
            return;
        }
        self.run_chunked(x.as_slice(), y.as_mut_slice(), m, nchunks, true);
    }

    /// Diagonal blocks, one per block row (read-only view for reference
    /// implementations).
    pub fn diag_blocks(&self) -> &[Block3] {
        &self.diag
    }

    /// CSR structure of the strictly-upper blocks:
    /// `(row_ptr, col_idx, blocks)`.
    pub fn upper_parts(&self) -> (&[usize], &[u32], &[Block3]) {
        (&self.row_ptr, &self.col_idx, &self.blocks)
    }

    /// Two-phase chunked driver on raw row-major storage. With
    /// `sequential` the jobs run in chunk order on the calling thread
    /// instead of the pool; the values are identical either way.
    fn run_chunked(
        &self,
        xs: &[f64],
        ys: &mut [f64],
        m: usize,
        nchunks: usize,
        sequential: bool,
    ) {
        let chunks = self.balanced_row_chunks(nchunks);
        // Phase 1: compute. Each chunk owns a disjoint window of Y plus
        // a private slab for the rows below it.
        let mut slabs: Vec<Vec<f64>> = chunks
            .iter()
            .map(|r| vec![0.0f64; (self.nb - r.end) * BLOCK_DIM * m])
            .collect();
        {
            let mut jobs: Vec<(Range<usize>, &mut [f64], &mut Vec<f64>)> =
                Vec::with_capacity(chunks.len());
            let mut rest = &mut *ys;
            for (r, slab) in chunks.iter().zip(slabs.iter_mut()) {
                let (window, tail) =
                    rest.split_at_mut((r.end - r.start) * BLOCK_DIM * m);
                jobs.push((r.clone(), window, slab));
                rest = tail;
            }
            if sequential {
                for (rows, window, slab) in jobs {
                    dispatch_sym_rows(self, xs, window, slab, rows.end, m, rows);
                }
            } else {
                rayon::scope(|s| {
                    for (rows, window, slab) in jobs {
                        s.spawn(move |_| {
                            dispatch_sym_rows(
                                self, xs, window, slab, rows.end, m, rows,
                            );
                        });
                    }
                });
            }
        }
        // Phase 2: reduce. Re-deal the same disjoint windows; each adds
        // every slab's overlap with its rows. Slab `t` covers rows
        // `chunks[t].end..nb`, so only windows strictly below chunk `t`
        // see contributions from it.
        let slabs = &slabs;
        let chunks_ref = &chunks;
        let mut jobs: Vec<(Range<usize>, &mut [f64])> =
            Vec::with_capacity(chunks.len());
        let mut rest = ys;
        for r in chunks.iter() {
            let (window, tail) =
                rest.split_at_mut((r.end - r.start) * BLOCK_DIM * m);
            jobs.push((r.clone(), window));
            rest = tail;
        }
        let reduce = |rows: Range<usize>, window: &mut [f64]| {
            for (src_rows, slab) in chunks_ref.iter().zip(slabs) {
                let base = src_rows.end;
                if base >= rows.end {
                    continue;
                }
                // Overlap of [base, nb) with this window's rows.
                let lo = rows.start.max(base);
                let src = &slab[(lo - base) * BLOCK_DIM * m
                    ..(rows.end - base) * BLOCK_DIM * m];
                let dst = &mut window[(lo - rows.start) * BLOCK_DIM * m..];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        };
        if sequential {
            for (rows, window) in jobs {
                reduce(rows, window);
            }
        } else {
            let reduce = &reduce;
            rayon::scope(|s| {
                for (rows, window) in jobs {
                    s.spawn(move |_| reduce(rows, window));
                }
            });
        }
    }

    /// Splits the block rows into at most `nchunks` contiguous ranges of
    /// approximately equal stored-block count (diagonal + upper blocks —
    /// the same weight the forward and transpose passes both scale with).
    #[allow(clippy::single_range_in_vec_init)]
    pub fn balanced_row_chunks(&self, nchunks: usize) -> Vec<Range<usize>> {
        let nb = self.nb;
        if nb == 0 || nchunks <= 1 {
            return vec![0..nb];
        }
        let total = self.stored_blocks();
        let target = (total / nchunks).max(1);
        let mut chunks = Vec::with_capacity(nchunks);
        let mut start = 0usize;
        let mut next_cut = target;
        for bi in 0..nb {
            // Cumulative weight through row bi: one diagonal block per
            // row plus the strictly-upper blocks.
            let through = bi + 1 + self.row_ptr[bi + 1];
            if through >= next_cut && bi + 1 > start && chunks.len() + 1 < nchunks {
                chunks.push(start..bi + 1);
                start = bi + 1;
                next_cut = through + target;
            }
        }
        if start < nb || chunks.is_empty() {
            chunks.push(start..nb);
        }
        chunks
    }
}

/// Stored-block count below which the auto drivers stay serial —
/// mirrors the threshold in [`crate::gspmv::gspmv`].
const PARALLEL_THRESHOLD: usize = 1 << 14;

/// Stored blocks per chunk targeted by
/// [`SymmetricBcrs::canonical_chunk_count`]. At the serial threshold
/// this yields 8 chunks, enough to keep small pools busy.
const CHUNK_GRAIN: usize = 1 << 11;

/// Upper bound on the canonical chunk count (slab memory scales with
/// the chunk count, so it is capped rather than scaling with the pool).
const MAX_CHUNKS: usize = 64;

/// Row-range symmetric kernel dispatch through the process-wide active
/// backend (see [`crate::backend`]).
///
/// Computes, for block rows `rows`:
/// * direct contributions (diagonal + forward + transpose terms landing
///   in `rows`) into `window` (the `Y` slice for exactly those rows),
/// * transpose contributions landing at row `slab_base` or below into
///   `slab` (row-major rows `slab_base..nb`, accumulated, not zeroed).
#[allow(clippy::too_many_arguments)]
fn dispatch_sym_rows(
    s: &SymmetricBcrs,
    x: &[f64],
    window: &mut [f64],
    slab: &mut [f64],
    slab_base: usize,
    m: usize,
    rows: Range<usize>,
) {
    crate::backend::active_backend()
        .sym_rows(s, x, window, slab, slab_base, m, rows);
}

/// The portable monomorphized symmetric row kernel — the scalar
/// backend's implementation of [`dispatch_sym_rows`]'s contract, also
/// the SIMD backend's delegation target for widths below one vector.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_sym_rows_scalar(
    s: &SymmetricBcrs,
    x: &[f64],
    window: &mut [f64],
    slab: &mut [f64],
    slab_base: usize,
    m: usize,
    rows: Range<usize>,
) {
    match m {
        1 => sym_rows_fixed::<1>(s, x, window, slab, slab_base, rows),
        2 => sym_rows_fixed::<2>(s, x, window, slab, slab_base, rows),
        4 => sym_rows_fixed::<4>(s, x, window, slab, slab_base, rows),
        8 => sym_rows_fixed::<8>(s, x, window, slab, slab_base, rows),
        12 => sym_rows_fixed::<12>(s, x, window, slab, slab_base, rows),
        16 => sym_rows_fixed::<16>(s, x, window, slab, slab_base, rows),
        24 => sym_rows_fixed::<24>(s, x, window, slab, slab_base, rows),
        32 => sym_rows_fixed::<32>(s, x, window, slab, slab_base, rows),
        42 => sym_rows_fixed::<42>(s, x, window, slab, slab_base, rows),
        48 => sym_rows_fixed::<48>(s, x, window, slab, slab_base, rows),
        _ => sym_rows_generic(s, x, window, slab, slab_base, m, rows),
    }
}

/// Monomorphized symmetric row-range kernel; see [`dispatch_sym_rows`]
/// for the contract.
fn sym_rows_fixed<const M: usize>(
    s: &SymmetricBcrs,
    x: &[f64],
    window: &mut [f64],
    slab: &mut [f64],
    slab_base: usize,
    rows: Range<usize>,
) {
    let y_base = rows.start * BLOCK_DIM * M;
    // Pass 1 — overwrite each window row with its diagonal + forward
    // terms. Must complete before any transpose term lands in-window
    // (transpose targets are strictly below their source row).
    for bi in rows.clone() {
        let xi = &x[bi * BLOCK_DIM * M..(bi + 1) * BLOCK_DIM * M];
        let mut acc = [[0.0f64; M]; BLOCK_DIM];
        block_madd_fixed::<M>(&s.diag[bi], xi, &mut acc, false);
        for k in s.row_ptr[bi]..s.row_ptr[bi + 1] {
            let bj = s.col_idx[k] as usize;
            let xj = &x[bj * BLOCK_DIM * M..(bj + 1) * BLOCK_DIM * M];
            block_madd_fixed::<M>(&s.blocks[k], xj, &mut acc, false);
        }
        let yo = bi * BLOCK_DIM * M - y_base;
        for i in 0..BLOCK_DIM {
            window[yo + i * M..yo + (i + 1) * M].copy_from_slice(&acc[i]);
        }
    }
    // Pass 2 — scatter transpose terms: in-window rows accumulate
    // directly, rows at or below `slab_base` accumulate into the slab.
    for bi in rows.clone() {
        let xi = &x[bi * BLOCK_DIM * M..(bi + 1) * BLOCK_DIM * M];
        for k in s.row_ptr[bi]..s.row_ptr[bi + 1] {
            let bj = s.col_idx[k] as usize;
            let b = &s.blocks[k];
            let target = if bj < rows.end {
                let yo = bj * BLOCK_DIM * M - y_base;
                &mut window[yo..yo + BLOCK_DIM * M]
            } else {
                let so = (bj - slab_base) * BLOCK_DIM * M;
                &mut slab[so..so + BLOCK_DIM * M]
            };
            let mut acc = [[0.0f64; M]; BLOCK_DIM];
            block_madd_fixed::<M>(b, xi, &mut acc, true);
            for i in 0..BLOCK_DIM {
                let t = &mut target[i * M..(i + 1) * M];
                for (tv, av) in t.iter_mut().zip(&acc[i]) {
                    *tv += av;
                }
            }
        }
    }
}

/// `acc (3×M) += B·x_slab` (or `Bᵀ·x_slab` when `transpose`) with
/// compile-time trip counts — the symmetric-storage version of the
/// paper's basic kernel.
#[inline]
fn block_madd_fixed<const M: usize>(
    b: &Block3,
    x: &[f64],
    acc: &mut [[f64; M]; BLOCK_DIM],
    transpose: bool,
) {
    let x0: &[f64; M] = x[..M].try_into().unwrap();
    let x1: &[f64; M] = x[M..2 * M].try_into().unwrap();
    let x2: &[f64; M] = x[2 * M..3 * M].try_into().unwrap();
    for i in 0..BLOCK_DIM {
        let (a0, a1, a2) = if transpose {
            (b.get(0, i), b.get(1, i), b.get(2, i))
        } else {
            (b.get(i, 0), b.get(i, 1), b.get(i, 2))
        };
        let acc_i = &mut acc[i];
        for j in 0..M {
            acc_i[j] += a0 * x0[j] + a1 * x1[j] + a2 * x2[j];
        }
    }
}

/// Any-`m` fallback with the same two-pass structure as
/// [`sym_rows_fixed`] — also the generic backend's symmetric kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sym_rows_generic(
    s: &SymmetricBcrs,
    x: &[f64],
    window: &mut [f64],
    slab: &mut [f64],
    slab_base: usize,
    m: usize,
    rows: Range<usize>,
) {
    let y_base = rows.start * BLOCK_DIM * m;
    for bi in rows.clone() {
        let yo = bi * BLOCK_DIM * m - y_base;
        let yr = &mut window[yo..yo + BLOCK_DIM * m];
        let xi = &x[bi * BLOCK_DIM * m..(bi + 1) * BLOCK_DIM * m];
        block_mul_slab(&s.diag[bi], xi, yr, m, true);
        for k in s.row_ptr[bi]..s.row_ptr[bi + 1] {
            let bj = s.col_idx[k] as usize;
            let xj = &x[bj * BLOCK_DIM * m..(bj + 1) * BLOCK_DIM * m];
            accumulate_block(&s.blocks[k], xj, yr, m, false);
        }
    }
    for bi in rows.clone() {
        let xi = &x[bi * BLOCK_DIM * m..(bi + 1) * BLOCK_DIM * m];
        for k in s.row_ptr[bi]..s.row_ptr[bi + 1] {
            let bj = s.col_idx[k] as usize;
            let target = if bj < rows.end {
                let yo = bj * BLOCK_DIM * m - y_base;
                &mut window[yo..yo + BLOCK_DIM * m]
            } else {
                let so = (bj - slab_base) * BLOCK_DIM * m;
                &mut slab[so..so + BLOCK_DIM * m]
            };
            accumulate_block(&s.blocks[k], xi, target, m, true);
        }
    }
}

/// `y_slab (3×m) (+)= B·x_slab`, writing when `overwrite`.
fn block_mul_slab(b: &Block3, x: &[f64], y: &mut [f64], m: usize, overwrite: bool) {
    for i in 0..BLOCK_DIM {
        for j in 0..m {
            let mut acc = 0.0;
            for c in 0..BLOCK_DIM {
                acc += b.get(i, c) * x[c * m + j];
            }
            if overwrite {
                y[i * m + j] = acc;
            } else {
                y[i * m + j] += acc;
            }
        }
    }
}

/// `y_slab += B·x_slab` (or `Bᵀ·x_slab` when `transpose`).
fn accumulate_block(
    b: &Block3,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    transpose: bool,
) {
    for i in 0..BLOCK_DIM {
        for c in 0..BLOCK_DIM {
            let a = if transpose { b.get(c, i) } else { b.get(i, c) };
            if a != 0.0 {
                let xr = &x[c * m..c * m + m];
                let yr = &mut y[i * m..i * m + m];
                for (yv, xv) in yr.iter_mut().zip(xr) {
                    *yv += a * xv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gspmv::{gspmv_serial, spmv_serial, SPECIALIZED_M};
    use crate::triplet::BlockTripletBuilder;

    fn random_symmetric(nb: usize, seed: u64) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..nb {
            let mut d = Block3::ZERO;
            for v in d.0.iter_mut() {
                *v = next();
            }
            t.add(i, i, (d + d.transpose()) * 0.5 + Block3::scaled_identity(4.0));
            for off in 1..4 {
                if i + off < nb && next() > 0.0 {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = next();
                    }
                    t.add_symmetric_pair(i, i + off, b);
                }
            }
        }
        t.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        MultiVec::from_flat(
            n,
            m,
            (0..n * m)
                .map(|v| (((v as u64).wrapping_mul(seed | 1) % 23) as f64) - 11.0)
                .collect(),
        )
    }

    fn assert_matches_full(
        a: &BcrsMatrix,
        got: &MultiVec,
        x: &MultiVec,
        ctx: &str,
    ) {
        let mut want = MultiVec::zeros(x.n(), x.m());
        gspmv_serial(a, x, &mut want);
        for (u, v) in want.as_slice().iter().zip(got.as_slice()) {
            assert!(
                (u - v).abs() <= 1e-12 * u.abs().max(v.abs()).max(1.0),
                "{ctx}: {u} vs {v}"
            );
        }
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::IDENTITY);
        t.add(1, 1, Block3::IDENTITY);
        t.add(0, 1, Block3::scaled_identity(2.0)); // no transpose partner
        let a = t.build();
        assert!(SymmetricBcrs::from_full(&a, 1e-12).is_none());
    }

    #[test]
    fn stores_about_half_the_blocks() {
        let a = random_symmetric(40, 3);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let full = a.nnz_blocks();
        let half = s.stored_blocks();
        // exactly the diagonal plus half of the off-diagonal blocks
        assert_eq!(half, (full + a.nb_rows()) / 2, "{half} vs {full}");
        assert!(s.stream_bytes() < a.stream_bytes());
    }

    #[test]
    fn spmv_matches_full_storage() {
        let a = random_symmetric(30, 7);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_serial(&a, &x, &mut y1);
        s.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-10 * u.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn serial_gspmv_matches_full_storage_all_specialized_m() {
        let a = random_symmetric(25, 11);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        for &m in SPECIALIZED_M {
            let x = pseudo_multivec(n, m, 7);
            let mut y = MultiVec::zeros(n, m);
            s.gspmv(&x, &mut y);
            assert_matches_full(&a, &y, &x, &format!("serial m={m}"));
        }
        // And a non-specialized size through the generic fallback.
        let x = pseudo_multivec(n, 7, 13);
        let mut y = MultiVec::zeros(n, 7);
        s.gspmv(&x, &mut y);
        assert_matches_full(&a, &y, &x, "serial m=7 (generic)");
    }

    #[test]
    fn threaded_gspmv_matches_full_storage_all_specialized_m() {
        let a = random_symmetric(60, 17);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        for &m in SPECIALIZED_M {
            for nthreads in [2usize, 3, 5] {
                let x = pseudo_multivec(n, m, 29 + m as u64);
                let mut y = MultiVec::zeros(n, m);
                s.gspmv_chunked(&x, &mut y, nthreads);
                assert_matches_full(&a, &y, &x, &format!("m={m} t={nthreads}"));
            }
        }
    }

    #[test]
    fn threaded_generic_fallback_matches() {
        let a = random_symmetric(40, 5);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        for m in [3usize, 7, 10] {
            let x = pseudo_multivec(n, m, 3);
            let mut y = MultiVec::zeros(n, m);
            s.gspmv_chunked(&x, &mut y, 4);
            assert_matches_full(&a, &y, &x, &format!("generic m={m}"));
        }
    }

    #[test]
    fn threaded_handles_empty_and_dense_rows() {
        // Row 0 dense (couples to every other row), rows 2 and 5 empty
        // apart from the (implicit, zero) diagonal.
        let nb = 9;
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            if i != 2 && i != 5 {
                t.add(i, i, Block3::scaled_identity(3.0));
            }
        }
        for j in 1..nb {
            if j != 2 && j != 5 {
                t.add_symmetric_pair(0, j, Block3::scaled_identity(0.5 + j as f64));
            }
        }
        let a = t.build();
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        for m in [1usize, 4, 8] {
            let x = pseudo_multivec(n, m, 11);
            let mut y = MultiVec::zeros(n, m);
            s.gspmv_chunked(&x, &mut y, 3);
            assert_matches_full(&a, &y, &x, &format!("dense/empty m={m}"));
        }
    }

    #[test]
    fn spmv_parallel_matches_serial() {
        let a = random_symmetric(80, 23);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 29) as f64) - 14.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        s.spmv(&x, &mut y1);
        s.spmv_parallel(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-12 * u.abs().max(1.0));
        }
    }

    #[test]
    fn balanced_chunks_cover_rows_exactly_once() {
        let a = random_symmetric(103, 41);
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        for nc in [1usize, 2, 3, 7, 16, 300] {
            let chunks = s.balanced_row_chunks(nc);
            let mut next = 0;
            for c in &chunks {
                assert_eq!(c.start, next);
                assert!(c.end > c.start || chunks.len() == 1);
                next = c.end;
            }
            assert_eq!(next, s.nb_rows());
            assert!(chunks.len() <= nc.max(1));
        }
    }

    #[test]
    fn diagonal_matrix_round_trip() {
        let a = BcrsMatrix::scaled_identity(6, 3.0);
        let s = SymmetricBcrs::from_full(&a, 0.0).unwrap();
        assert_eq!(s.stored_blocks(), 6);
        let x = vec![2.0; 18];
        let mut y = vec![0.0; 18];
        s.spmv(&x, &mut y);
        assert!(y.iter().all(|&v| (v - 6.0).abs() < 1e-14));
    }
}
