//! Block Compressed Row Storage with 3×3 blocks.
//!
//! This is the format the paper uses for all experiments (§IV-A1): an
//! array of non-zero blocks stored row-wise, a column-index array, and a
//! row-pointer array, exactly like CSR but at block granularity. The
//! Stokesian dynamics matrices studied have a natural 3×3 block structure
//! (translational coupling of particle pairs), which is why the paper
//! skips register blocking — the format already provides it.

use crate::block::Block3;
use crate::stats::MatrixStats;
use crate::BLOCK_DIM;

/// A sparse block matrix with 3×3 blocks in compressed row storage.
#[derive(Clone, Debug, PartialEq)]
pub struct BcrsMatrix {
    nb_rows: usize,
    nb_cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the blocks of block row `i`.
    row_ptr: Vec<usize>,
    /// Block-column index of each stored block.
    col_idx: Vec<u32>,
    /// The stored blocks, row-wise.
    blocks: Vec<Block3>,
}

impl BcrsMatrix {
    /// Assembles a matrix from raw CSR-style parts.
    ///
    /// # Panics
    /// If the arrays are inconsistent (lengths, non-monotone `row_ptr`,
    /// column indices out of range, or unsorted/duplicate columns within
    /// a row).
    pub fn from_parts(
        nb_rows: usize,
        nb_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        blocks: Vec<Block3>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nb_rows + 1, "row_ptr length mismatch");
        assert_eq!(col_idx.len(), blocks.len(), "col_idx/blocks length mismatch");
        assert_eq!(
            *row_ptr.last().unwrap_or(&0),
            col_idx.len(),
            "row_ptr tail mismatch"
        );
        for i in 0..nb_rows {
            assert!(
                row_ptr[i] <= row_ptr[i + 1],
                "row_ptr not monotone at row {i}"
            );
            let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns not strictly increasing in row {i}");
            }
            if let Some(&last) = cols.last() {
                assert!(
                    (last as usize) < nb_cols,
                    "column out of range in row {i}"
                );
            }
        }
        BcrsMatrix { nb_rows, nb_cols, row_ptr, col_idx, blocks }
    }

    /// A square zero matrix with `nb` block rows.
    pub fn zero(nb: usize) -> Self {
        BcrsMatrix {
            nb_rows: nb,
            nb_cols: nb,
            row_ptr: vec![0; nb + 1],
            col_idx: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// The scaled block identity `s·I` of `nb` block rows.
    pub fn scaled_identity(nb: usize, s: f64) -> Self {
        BcrsMatrix {
            nb_rows: nb,
            nb_cols: nb,
            row_ptr: (0..=nb).collect(),
            col_idx: (0..nb as u32).collect(),
            blocks: vec![Block3::scaled_identity(s); nb],
        }
    }

    /// Number of block rows.
    #[inline]
    pub fn nb_rows(&self) -> usize {
        self.nb_rows
    }

    /// Number of block columns.
    #[inline]
    pub fn nb_cols(&self) -> usize {
        self.nb_cols
    }

    /// Number of scalar rows (`3 × nb_rows`).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.nb_rows * BLOCK_DIM
    }

    /// Number of scalar columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.nb_cols * BLOCK_DIM
    }

    /// Number of stored blocks (`nnzb`).
    #[inline]
    pub fn nnz_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of stored scalars (`nnz = 9 · nnzb`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.blocks.len() * BLOCK_DIM * BLOCK_DIM
    }

    /// Row pointer array (block granularity).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (block granularity).
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Stored blocks, row-wise.
    #[inline]
    pub fn blocks(&self) -> &[Block3] {
        &self.blocks
    }

    /// Mutable access to the stored blocks (pattern is fixed).
    #[inline]
    pub fn blocks_mut(&mut self) -> &mut [Block3] {
        &mut self.blocks
    }

    /// The columns and blocks of block row `bi`.
    #[inline]
    pub fn block_row(&self, bi: usize) -> (&[u32], &[Block3]) {
        let range = self.row_ptr[bi]..self.row_ptr[bi + 1];
        (&self.col_idx[range.clone()], &self.blocks[range])
    }

    /// Looks up the block at `(bi, bj)`, if stored.
    pub fn block_at(&self, bi: usize, bj: usize) -> Option<&Block3> {
        let (cols, blocks) = self.block_row(bi);
        cols.binary_search(&(bj as u32)).ok().map(|k| &blocks[k])
    }

    /// Summary statistics (Table I quantities).
    pub fn stats(&self) -> MatrixStats {
        MatrixStats {
            n: self.n_rows(),
            nb: self.nb_rows,
            nnz: self.nnz(),
            nnzb: self.nnz_blocks(),
        }
    }

    /// Average number of non-zero blocks per block row (`nnzb/nb`), the
    /// density parameter of the paper's performance model.
    pub fn blocks_per_row(&self) -> f64 {
        if self.nb_rows == 0 {
            0.0
        } else {
            self.nnz_blocks() as f64 / self.nb_rows as f64
        }
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> BcrsMatrix {
        let mut counts = vec![0usize; self.nb_cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.nb_cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz_blocks()];
        let mut blocks = vec![Block3::ZERO; self.nnz_blocks()];
        let mut next = counts;
        for bi in 0..self.nb_rows {
            let (cols, blks) = self.block_row(bi);
            for (c, b) in cols.iter().zip(blks) {
                let dst = next[*c as usize];
                col_idx[dst] = bi as u32;
                blocks[dst] = b.transpose();
                next[*c as usize] += 1;
            }
        }
        BcrsMatrix {
            nb_rows: self.nb_cols,
            nb_cols: self.nb_rows,
            row_ptr,
            col_idx,
            blocks,
        }
    }

    /// Whether the matrix is structurally and numerically symmetric
    /// within absolute tolerance `tol`.
    pub fn is_symmetric_within(&self, tol: f64) -> bool {
        if self.nb_rows != self.nb_cols {
            return false;
        }
        for bi in 0..self.nb_rows {
            let (cols, blks) = self.block_row(bi);
            for (c, b) in cols.iter().zip(blks) {
                match self.block_at(*c as usize, bi) {
                    None => return false,
                    Some(bt) => {
                        let d = *b - bt.transpose();
                        if d.0.iter().any(|v| v.abs() > tol) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Extracts the diagonal blocks (zero block where none is stored).
    pub fn diagonal_blocks(&self) -> Vec<Block3> {
        assert_eq!(self.nb_rows, self.nb_cols, "diagonal of non-square matrix");
        (0..self.nb_rows)
            .map(|bi| self.block_at(bi, bi).copied().unwrap_or(Block3::ZERO))
            .collect()
    }

    /// Adds `s·I` to the matrix in place. Panics if any diagonal block is
    /// missing from the sparsity pattern (assembly should always include
    /// the diagonal).
    pub fn add_scaled_identity(&mut self, s: f64) {
        assert_eq!(self.nb_rows, self.nb_cols);
        for bi in 0..self.nb_rows {
            let range = self.row_ptr[bi]..self.row_ptr[bi + 1];
            let cols = &self.col_idx[range.clone()];
            let k = cols
                .binary_search(&(bi as u32))
                .unwrap_or_else(|_| panic!("diagonal block {bi} not in pattern"));
            let b = &mut self.blocks[range.start + k];
            *b += Block3::scaled_identity(s);
        }
    }

    /// Gershgorin upper bound on the spectrum: `max_i (a_ii + Σ_{j≠i} |a_ij|)`
    /// computed on the scalar matrix.
    pub fn gershgorin_upper_bound(&self) -> f64 {
        let mut bound = f64::NEG_INFINITY;
        for bi in 0..self.nb_rows {
            let (cols, blks) = self.block_row(bi);
            let mut row_sums = [0.0f64; BLOCK_DIM];
            let mut diag = [0.0f64; BLOCK_DIM];
            for (c, b) in cols.iter().zip(blks) {
                let sums = b.row_abs_sums();
                for i in 0..BLOCK_DIM {
                    row_sums[i] += sums[i];
                }
                if *c as usize == bi {
                    for i in 0..BLOCK_DIM {
                        diag[i] = b.get(i, i);
                    }
                }
            }
            for i in 0..BLOCK_DIM {
                // row_sums includes |a_ii|; Gershgorin disc is centered at
                // a_ii with radius (row_sums - |a_ii|).
                let radius = row_sums[i] - diag[i].abs();
                bound = bound.max(diag[i] + radius);
            }
        }
        if bound == f64::NEG_INFINITY {
            0.0
        } else {
            bound
        }
    }

    /// Gershgorin lower bound on the spectrum.
    pub fn gershgorin_lower_bound(&self) -> f64 {
        let mut bound = f64::INFINITY;
        for bi in 0..self.nb_rows {
            let (cols, blks) = self.block_row(bi);
            let mut row_sums = [0.0f64; BLOCK_DIM];
            let mut diag = [0.0f64; BLOCK_DIM];
            for (c, b) in cols.iter().zip(blks) {
                let sums = b.row_abs_sums();
                for i in 0..BLOCK_DIM {
                    row_sums[i] += sums[i];
                }
                if *c as usize == bi {
                    for i in 0..BLOCK_DIM {
                        diag[i] = b.get(i, i);
                    }
                }
            }
            for i in 0..BLOCK_DIM {
                let radius = row_sums[i] - diag[i].abs();
                bound = bound.min(diag[i] - radius);
            }
        }
        if bound == f64::INFINITY {
            0.0
        } else {
            bound
        }
    }

    /// Converts the matrix to a dense row-major scalar array (test/debug
    /// helper; use only for small matrices).
    pub fn to_dense(&self) -> Vec<f64> {
        let (nr, nc) = (self.n_rows(), self.n_cols());
        let mut dense = vec![0.0; nr * nc];
        for bi in 0..self.nb_rows {
            let (cols, blks) = self.block_row(bi);
            for (c, b) in cols.iter().zip(blks) {
                let bj = *c as usize;
                for i in 0..BLOCK_DIM {
                    for j in 0..BLOCK_DIM {
                        dense[(bi * BLOCK_DIM + i) * nc + bj * BLOCK_DIM + j] =
                            b.get(i, j);
                    }
                }
            }
        }
        dense
    }

    /// Extracts the square submatrix whose block rows and columns are
    /// `keep` (in the given order). Used by the distributed simulator to
    /// form per-node local/remote operators.
    pub fn submatrix(&self, row_range: std::ops::Range<usize>) -> BcrsMatrix {
        let lo = row_range.start;
        let hi = row_range.end;
        assert!(hi <= self.nb_rows);
        let base = self.row_ptr[lo];
        let row_ptr: Vec<usize> =
            self.row_ptr[lo..=hi].iter().map(|p| p - base).collect();
        BcrsMatrix {
            nb_rows: hi - lo,
            nb_cols: self.nb_cols,
            row_ptr,
            col_idx: self.col_idx[base..self.row_ptr[hi]].to_vec(),
            blocks: self.blocks[base..self.row_ptr[hi]].to_vec(),
        }
    }

    /// Bytes of matrix data streamed by one SPMV/GSPMV pass: blocks,
    /// column indices, and row pointers. This is the `4·nb + nnzb·(4+s_a)`
    /// term of the paper's memory-traffic model.
    pub fn stream_bytes(&self) -> usize {
        self.nnz_blocks() * (4 + 72) + 4 * self.nb_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::BlockTripletBuilder;

    fn sample() -> BcrsMatrix {
        // [ 2I  B  ]
        // [ Bt  3I ]  with B = upper-triangular test block
        let b =
            Block3::from_rows([[0.0, 1.0, 0.0], [0.0, 0.0, 2.0], [0.0, 0.0, 0.0]]);
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 1, Block3::scaled_identity(3.0));
        t.add_symmetric_pair(0, 1, b);
        t.build()
    }

    #[test]
    fn counts_and_density() {
        let m = sample();
        assert_eq!(m.nb_rows(), 2);
        assert_eq!(m.n_rows(), 6);
        assert_eq!(m.nnz_blocks(), 4);
        assert_eq!(m.nnz(), 36);
        assert!((m.blocks_per_row() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn symmetric_detection() {
        let m = sample();
        assert!(m.is_symmetric_within(0.0));
        let mut asym = m.clone();
        asym.blocks_mut()[1].0[0] += 1.0; // perturb the (0,1) block only
        assert!(!asym.is_symmetric_within(1e-12));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        let d = m.to_dense();
        let dt = t.to_dense();
        let n = m.n_rows();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d[i * n + j], dt[j * n + i]);
            }
        }
    }

    #[test]
    fn diagonal_blocks_and_shift() {
        let mut m = sample();
        let d = m.diagonal_blocks();
        assert_eq!(d[0].get(0, 0), 2.0);
        assert_eq!(d[1].get(2, 2), 3.0);
        m.add_scaled_identity(1.5);
        assert_eq!(m.block_at(0, 0).unwrap().get(1, 1), 3.5);
    }

    #[test]
    fn gershgorin_bounds_bracket_identity() {
        let m = BcrsMatrix::scaled_identity(5, 4.0);
        assert_eq!(m.gershgorin_lower_bound(), 4.0);
        assert_eq!(m.gershgorin_upper_bound(), 4.0);
    }

    #[test]
    fn gershgorin_bounds_bracket_sample_spectrum() {
        let m = sample();
        // spectrum of the dense matrix lies within [lower, upper]
        let lo = m.gershgorin_lower_bound();
        let hi = m.gershgorin_upper_bound();
        assert!(lo <= 2.0 && hi >= 3.0);
        // off-diagonal entries 1 and 2 widen the discs
        assert!(lo <= 2.0 - 1.0 + 1e-12);
        assert!(hi >= 3.0 + 2.0 - 1e-12);
    }

    #[test]
    fn submatrix_takes_row_slice() {
        let m = sample();
        let s = m.submatrix(1..2);
        assert_eq!(s.nb_rows(), 1);
        assert_eq!(s.nb_cols(), 2);
        assert_eq!(s.nnz_blocks(), 2);
        assert_eq!(*s.block_at(0, 1).unwrap(), Block3::scaled_identity(3.0));
    }

    #[test]
    #[should_panic(expected = "columns not strictly increasing")]
    fn from_parts_rejects_unsorted_columns() {
        BcrsMatrix::from_parts(
            1,
            2,
            vec![0, 2],
            vec![1, 0],
            vec![Block3::IDENTITY, Block3::IDENTITY],
        );
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn from_parts_rejects_out_of_range_column() {
        BcrsMatrix::from_parts(1, 1, vec![0, 1], vec![3], vec![Block3::IDENTITY]);
    }

    #[test]
    fn stream_bytes_matches_formula() {
        let m = sample();
        assert_eq!(m.stream_bytes(), 4 * 76 + 4 * 2);
    }
}
