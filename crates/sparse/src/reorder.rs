//! Reverse Cuthill–McKee reordering and symmetric permutation.
//!
//! Ordering is one of the classical SPMV optimizations the paper cites
//! (Pinar & Heath); reducing bandwidth improves the reuse of `x` rows
//! across consecutive block rows (shrinks `k(m)` in the performance
//! model). The ablation bench measures its effect on the SD matrices.

use crate::bcrs::BcrsMatrix;
use crate::block::Block3;
use std::collections::VecDeque;

/// Computes a reverse Cuthill–McKee ordering of the block graph of `a`.
/// Returns `perm` with `perm[new] = old`. Disconnected components are
/// each started from a minimum-degree vertex.
pub fn reverse_cuthill_mckee(a: &BcrsMatrix) -> Vec<usize> {
    assert_eq!(a.nb_rows(), a.nb_cols(), "RCM requires a square matrix");
    let nb = a.nb_rows();
    let degree = |bi: usize| -> usize { a.row_ptr()[bi + 1] - a.row_ptr()[bi] };

    let mut visited = vec![false; nb];
    let mut order = Vec::with_capacity(nb);
    let mut queue = VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();

    // Vertices sorted by degree serve as component seeds.
    let mut seeds: Vec<usize> = (0..nb).collect();
    seeds.sort_by_key(|&bi| degree(bi));

    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            let (cols, _) = a.block_row(v);
            for &c in cols {
                let u = c as usize;
                if u != v && !visited[u] {
                    visited[u] = true;
                    neighbors.push(u);
                }
            }
            neighbors.sort_by_key(|&u| degree(u));
            for &u in &neighbors {
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Applies the symmetric permutation `perm` (`perm[new] = old`) to both
/// rows and columns of `a`.
pub fn permute_symmetric(a: &BcrsMatrix, perm: &[usize]) -> BcrsMatrix {
    let nb = a.nb_rows();
    assert_eq!(a.nb_cols(), nb);
    assert_eq!(perm.len(), nb);
    let mut inv = vec![usize::MAX; nb];
    for (new, &old) in perm.iter().enumerate() {
        assert!(inv[old] == usize::MAX, "perm is not a permutation");
        inv[old] = new;
    }

    let mut row_ptr = vec![0usize; nb + 1];
    for new in 0..nb {
        let old = perm[new];
        row_ptr[new + 1] = row_ptr[new] + (a.row_ptr()[old + 1] - a.row_ptr()[old]);
    }
    let nnzb = a.nnz_blocks();
    let mut col_idx = vec![0u32; nnzb];
    let mut blocks = vec![Block3::ZERO; nnzb];
    let mut entry: Vec<(u32, Block3)> = Vec::new();
    for new in 0..nb {
        let old = perm[new];
        let (cols, blks) = a.block_row(old);
        entry.clear();
        entry.extend(
            cols.iter().zip(blks).map(|(c, b)| (inv[*c as usize] as u32, *b)),
        );
        entry.sort_unstable_by_key(|&(c, _)| c);
        let base = row_ptr[new];
        for (k, (c, b)) in entry.iter().enumerate() {
            col_idx[base + k] = *c;
            blocks[base + k] = *b;
        }
    }
    BcrsMatrix::from_parts(nb, nb, row_ptr, col_idx, blocks)
}

/// The (block) bandwidth of `a`: max over stored blocks of `|row − col|`.
pub fn bandwidth(a: &BcrsMatrix) -> usize {
    let mut bw = 0usize;
    for bi in 0..a.nb_rows() {
        let (cols, _) = a.block_row(bi);
        for &c in cols {
            bw = bw.max(bi.abs_diff(c as usize));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::BlockTripletBuilder;

    /// A ring lattice numbered so its natural order has large bandwidth.
    fn shuffled_ring(nb: usize) -> BcrsMatrix {
        // Connect i to i+1 in a *shuffled* labelling: label = bit-reversed.
        let bits = nb.next_power_of_two().trailing_zeros();
        let relabel = |i: usize| -> usize {
            let mut r = (i as u32).reverse_bits() >> (32 - bits);
            while r as usize >= nb {
                r /= 2;
            }
            r as usize
        };
        let mut t = BlockTripletBuilder::square(nb);
        let mut seen = std::collections::HashSet::new();
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
        }
        for i in 0..nb {
            let (a, b) = (relabel(i), relabel((i + 1) % nb));
            if a != b && seen.insert((a.min(b), a.max(b))) {
                t.add_symmetric_pair(a, b, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = shuffled_ring(32);
        let perm = reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth() {
        let a = shuffled_ring(64);
        let before = bandwidth(&a);
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm);
        let after = bandwidth(&b);
        assert!(after <= before, "bandwidth {before} -> {after}");
        assert!(after < 64 / 2, "ring should order near-linearly, got {after}");
    }

    #[test]
    fn permutation_preserves_spmv_up_to_reordering() {
        let a = shuffled_ring(16);
        let n = a.n_rows();
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm);

        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        // permuted x: xb[new block] = x[old block]
        let mut xb = vec![0.0; n];
        for (new, &old) in perm.iter().enumerate() {
            xb[3 * new..3 * new + 3].copy_from_slice(&x[3 * old..3 * old + 3]);
        }
        let mut y = vec![0.0; n];
        let mut yb = vec![0.0; n];
        crate::gspmv::spmv_serial(&a, &x, &mut y);
        crate::gspmv::spmv_serial(&b, &xb, &mut yb);
        for (new, &old) in perm.iter().enumerate() {
            for k in 0..3 {
                assert!((yb[3 * new + k] - y[3 * old + k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn permutation_preserves_symmetry() {
        let a = shuffled_ring(16);
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm);
        assert!(b.is_symmetric_within(0.0));
        assert_eq!(b.nnz_blocks(), a.nnz_blocks());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_duplicates() {
        let a = shuffled_ring(4);
        permute_symmetric(&a, &[0, 0, 1, 2]);
    }
}
