//! Row partitioning for distributed GSPMV.
//!
//! The paper (§IV-A2) balances load with a *coordinate-based* scheme:
//! particles are binned on a 3D grid and bins are assigned to partitions
//! so that stored-non-zero counts balance; the result had communication
//! volume and balance comparable to METIS. We implement that scheme
//! (with Morton-ordered bins for locality) plus recursive coordinate
//! bisection (RCB) as the METIS-substitute comparator, and quality
//! metrics (load imbalance, communication volume) used by the ablation
//! bench.

use crate::bcrs::BcrsMatrix;

/// An assignment of block rows to `n_parts` partitions ("nodes").
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    n_parts: usize,
    /// `assignment[block_row] = partition id`.
    assignment: Vec<u32>,
}

impl Partition {
    /// Wraps a raw assignment vector.
    pub fn from_assignment(n_parts: usize, assignment: Vec<u32>) -> Self {
        assert!(n_parts > 0);
        assert!(assignment.iter().all(|&p| (p as usize) < n_parts));
        Partition { n_parts, assignment }
    }

    /// Number of partitions.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Partition of block row `bi`.
    pub fn part_of(&self, bi: usize) -> usize {
        self.assignment[bi] as usize
    }

    /// The assignment array.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Block rows of each partition, in ascending row order.
    pub fn parts(&self) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.n_parts];
        for (bi, &p) in self.assignment.iter().enumerate() {
            parts[p as usize].push(bi);
        }
        parts
    }

    /// A permutation placing each partition's rows contiguously:
    /// `perm[new] = old`.
    pub fn permutation(&self) -> Vec<usize> {
        self.parts().into_iter().flatten().collect()
    }

    /// Load imbalance: max partition nnzb over mean partition nnzb
    /// (1.0 = perfect).
    pub fn load_imbalance(&self, a: &BcrsMatrix) -> f64 {
        assert_eq!(a.nb_rows(), self.assignment.len());
        let mut loads = vec![0usize; self.n_parts];
        for bi in 0..a.nb_rows() {
            loads[self.assignment[bi] as usize] +=
                a.row_ptr()[bi + 1] - a.row_ptr()[bi];
        }
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = a.nnz_blocks() as f64 / self.n_parts as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Total communication volume in *block columns*: for each partition,
    /// the number of distinct off-partition block rows of `x` it must
    /// receive. This scales linearly with `m` in actual bytes, as the
    /// paper notes.
    pub fn communication_volume(&self, a: &BcrsMatrix) -> usize {
        assert_eq!(a.nb_rows(), self.assignment.len());
        let nb = a.nb_rows();
        // For each partition, mark needed remote rows with an epoch array.
        let mut needed = vec![u32::MAX; nb];
        let mut volume = 0usize;
        for bi in 0..nb {
            let p = self.assignment[bi];
            let (cols, _) = a.block_row(bi);
            for &c in cols {
                let cb = c as usize;
                if self.assignment[cb] != p && needed[cb] != p {
                    needed[cb] = p;
                    volume += 1;
                }
            }
        }
        volume
    }
}

/// Contiguous chunking by balanced nnzb — the degenerate 1-D scheme used
/// when no coordinates are available.
pub fn contiguous_partition(a: &BcrsMatrix, n_parts: usize) -> Partition {
    let chunks = crate::gspmv::balanced_row_chunks(a, n_parts);
    let mut assignment = vec![0u32; a.nb_rows()];
    for (p, r) in chunks.iter().enumerate() {
        for bi in r.clone() {
            assignment[bi] = p as u32;
        }
    }
    Partition { n_parts, assignment }
}

/// The paper's coordinate-based partitioner: bin particles on a 3D grid,
/// walk bins in Morton order, and cut into `n_parts` pieces of balanced
/// nnzb. One particle ↔ one block row.
pub fn coordinate_partition(
    a: &BcrsMatrix,
    positions: &[[f64; 3]],
    box_lengths: [f64; 3],
    n_parts: usize,
) -> Partition {
    assert_eq!(positions.len(), a.nb_rows(), "one position per block row");
    assert!(n_parts > 0);
    let nb = a.nb_rows();
    if n_parts == 1 || nb == 0 {
        return Partition { n_parts, assignment: vec![0; nb] };
    }

    // Grid with ~8 bins per partition, power-of-two side for Morton codes.
    let target_bins = (8 * n_parts).max(8);
    let side = (target_bins as f64).powf(1.0 / 3.0).ceil() as u32;
    let side = side.next_power_of_two().min(1 << 10);

    let cell_of = |p: &[f64; 3]| -> [u32; 3] {
        let mut c = [0u32; 3];
        for d in 0..3 {
            let frac = (p[d] / box_lengths[d]).rem_euclid(1.0);
            c[d] = ((frac * side as f64) as u32).min(side - 1);
        }
        c
    };

    // Sort rows by Morton code of their bin (stable within a bin).
    let mut order: Vec<usize> = (0..nb).collect();
    let codes: Vec<u64> = positions.iter().map(|p| morton3(cell_of(p))).collect();
    order.sort_by_key(|&bi| codes[bi]);

    // Greedy balanced cut along the Morton walk.
    let total = a.nnz_blocks();
    let mut assignment = vec![0u32; nb];
    let mut part = 0u32;
    let mut acc = 0usize;
    let mut remaining = total;
    let mut rows_left = nb;
    for &bi in &order {
        let row_nnz = a.row_ptr()[bi + 1] - a.row_ptr()[bi];
        let parts_left = n_parts as u32 - part;
        let target = (remaining as f64 / parts_left as f64).ceil() as usize;
        if acc >= target
            && (part as usize) < n_parts - 1
            && rows_left > (parts_left as usize - 1)
        {
            part += 1;
            remaining -= acc;
            acc = 0;
        }
        assignment[bi] = part;
        acc += row_nnz;
        rows_left -= 1;
    }
    Partition { n_parts, assignment }
}

/// Recursive coordinate bisection on row coordinates with nnzb weights —
/// the METIS substitute used for comparison in the partitioning ablation.
pub fn rcb_partition(
    a: &BcrsMatrix,
    positions: &[[f64; 3]],
    n_parts: usize,
) -> Partition {
    assert_eq!(positions.len(), a.nb_rows());
    assert!(n_parts > 0);
    let nb = a.nb_rows();
    let weights: Vec<usize> =
        (0..nb).map(|bi| a.row_ptr()[bi + 1] - a.row_ptr()[bi]).collect();
    let mut assignment = vec![0u32; nb];
    let all: Vec<usize> = (0..nb).collect();
    rcb_recurse(&all, positions, &weights, 0, n_parts, &mut assignment);
    Partition { n_parts, assignment }
}

fn rcb_recurse(
    rows: &[usize],
    positions: &[[f64; 3]],
    weights: &[usize],
    first_part: usize,
    n_parts: usize,
    assignment: &mut [u32],
) {
    if n_parts == 1 {
        for &r in rows {
            assignment[r] = first_part as u32;
        }
        return;
    }
    // Split along the axis of largest extent.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &r in rows {
        for d in 0..3 {
            lo[d] = lo[d].min(positions[r][d]);
            hi[d] = hi[d].max(positions[r][d]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap());
    let axis = axis.unwrap_or(0);

    let mut sorted: Vec<usize> = rows.to_vec();
    sorted.sort_by(|&x, &y| {
        positions[x][axis].partial_cmp(&positions[y][axis]).unwrap()
    });

    let left_parts = n_parts / 2;
    let total: usize = sorted.iter().map(|&r| weights[r]).sum();
    let target = total * left_parts / n_parts;
    let mut acc = 0usize;
    let mut cut = 0usize;
    for (i, &r) in sorted.iter().enumerate() {
        if acc >= target && i > 0 {
            cut = i;
            break;
        }
        acc += weights[r];
        cut = i + 1;
    }
    // Keep at least one row on each side when possible.
    let cut = cut.clamp(
        usize::from(sorted.len() > 1),
        sorted.len().saturating_sub(usize::from(sorted.len() > 1)).max(1),
    );
    let (left, right) = sorted.split_at(cut);
    rcb_recurse(left, positions, weights, first_part, left_parts, assignment);
    rcb_recurse(
        right,
        positions,
        weights,
        first_part + left_parts,
        n_parts - left_parts,
        assignment,
    );
}

/// Interleaves the low 21 bits of each coordinate into a Morton code.
fn morton3(c: [u32; 3]) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut x = v as u64 & 0x1f_ffff;
        x = (x | x << 32) & 0x1f00000000ffff;
        x = (x | x << 16) & 0x1f0000ff0000ff;
        x = (x | x << 8) & 0x100f00f00f00f00f;
        x = (x | x << 4) & 0x10c30c30c30c30c3;
        x = (x | x << 2) & 0x1249249249249249;
        x
    }
    spread(c[0]) | spread(c[1]) << 1 | spread(c[2]) << 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block3;
    use crate::triplet::BlockTripletBuilder;

    /// A chain matrix whose rows correspond to points along a line.
    fn chain(nb: usize) -> (BcrsMatrix, Vec<[f64; 3]>) {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(2.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        let pos: Vec<[f64; 3]> =
            (0..nb).map(|i| [i as f64 + 0.5, 0.5, 0.5]).collect();
        (t.build(), pos)
    }

    #[test]
    fn morton_orders_locally() {
        assert!(morton3([0, 0, 0]) < morton3([1, 0, 0]));
        assert_eq!(morton3([1, 0, 0]), 1);
        assert_eq!(morton3([0, 1, 0]), 2);
        assert_eq!(morton3([0, 0, 1]), 4);
        assert_eq!(morton3([1, 1, 1]), 7);
    }

    #[test]
    fn contiguous_partition_covers_everything() {
        let (a, _) = chain(20);
        let p = contiguous_partition(&a, 4);
        let parts = p.parts();
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 20);
        assert!(p.load_imbalance(&a) < 1.5);
    }

    #[test]
    fn coordinate_partition_is_balanced_on_chain() {
        let (a, pos) = chain(64);
        let p = coordinate_partition(&a, &pos, [64.0, 1.0, 1.0], 4);
        assert_eq!(p.n_parts(), 4);
        assert!(p.load_imbalance(&a) < 1.4, "imbalance {}", p.load_imbalance(&a));
        // A chain cut into 4 pieces has few cut edges: volume small.
        assert!(p.communication_volume(&a) <= 12);
    }

    #[test]
    fn rcb_partition_is_balanced_on_chain() {
        let (a, pos) = chain(64);
        let p = rcb_partition(&a, &pos, 4);
        assert!(p.load_imbalance(&a) < 1.4);
        assert!(p.communication_volume(&a) <= 12);
        // every part non-empty
        assert!(p.parts().iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn single_part_has_zero_communication() {
        let (a, pos) = chain(10);
        let p = coordinate_partition(&a, &pos, [10.0, 1.0, 1.0], 1);
        assert_eq!(p.communication_volume(&a), 0);
        assert_eq!(p.load_imbalance(&a), 1.0);
    }

    #[test]
    fn permutation_groups_parts_contiguously() {
        let (a, pos) = chain(16);
        let p = rcb_partition(&a, &pos, 4);
        let perm = p.permutation();
        let mut seen_parts = Vec::new();
        for &old in &perm {
            let part = p.part_of(old);
            if seen_parts.last() != Some(&part) {
                assert!(!seen_parts.contains(&part), "part interleaved");
                seen_parts.push(part);
            }
        }
        assert_eq!(seen_parts.len(), 4);
    }

    #[test]
    fn communication_volume_counts_distinct_remote_rows() {
        // 2 rows, dense coupling, 2 parts: each part needs 1 remote row.
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::IDENTITY);
        t.add(1, 1, Block3::IDENTITY);
        t.add_symmetric_pair(0, 1, Block3::IDENTITY);
        let a = t.build();
        let p = Partition::from_assignment(2, vec![0, 1]);
        assert_eq!(p.communication_volume(&a), 2);
    }
}
