//! Machine parameter sets.
//!
//! The model needs two rates: achievable memory bandwidth `B` (the
//! paper uses STREAM with the write-allocate correction) and the
//! achievable compute rate `F` of the basic kernel (~70% of peak on
//! both of the paper's processors). The paper's §IV-C machines are
//! provided as presets; [`crate::measure`] builds a profile for the
//! host this code actually runs on.

/// Bandwidth/compute parameters of one machine (or one node).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineProfile {
    /// Achievable memory bandwidth `B` in bytes/second.
    pub bandwidth: f64,
    /// Achievable basic-kernel compute rate `F` in flops/second.
    pub flops: f64,
    /// Cache-reuse parameter `k(m)` of the model, treated as constant
    /// in `m` (the paper: "k(m) is only a weak function of m", ≈3 for
    /// typical SD matrices).
    pub k: f64,
}

impl MachineProfile {
    /// Byte-to-flop ratio `B/F`, the y-axis of the paper's Fig. 1.
    pub fn byte_per_flop(&self) -> f64 {
        self.bandwidth / self.flops
    }

    /// The paper's Westmere node (Xeon X5680): 23 GB/s STREAM,
    /// 45 Gflop/s basic kernel, `B/F = 0.55` (§IV-D1), `k ≈ 3`.
    pub fn wsm() -> Self {
        MachineProfile { bandwidth: 23e9, flops: 45e9, k: 3.0 }
    }

    /// The paper's Sandy Bridge node (Xeon E5-2670): 33 GB/s STREAM,
    /// 90 Gflop/s basic kernel, `B/F = 0.37`. The large last-level
    /// cache retains much of X and Y, which the paper describes as a
    /// negative `k`; we use `k = 0` for SNB.
    pub fn snb() -> Self {
        MachineProfile { bandwidth: 33e9, flops: 90e9, k: 0.0 }
    }

    /// The paper's cluster node: WSM at 2.9 GHz instead of 3.3 GHz
    /// (compute scales with frequency; bandwidth does not).
    pub fn wsm_cluster_node() -> Self {
        MachineProfile { bandwidth: 23e9, flops: 45e9 * 2.9 / 3.3, k: 3.0 }
    }

    /// The Fig. 7 calibration: `B = 19.4` GB/s STREAM on the paper's
    /// simulation server (dual-socket Xeon E5530).
    pub fn sd_server() -> Self {
        MachineProfile { bandwidth: 19.4e9, flops: 40e9, k: 3.0 }
    }

    /// A thread-scaled variant: compute scales with the number of
    /// threads (up to the given per-node maximum), while bandwidth
    /// saturates much earlier — this is the mechanism behind the
    /// paper's Fig. 8 (more threads ⇒ lower `B/F` ⇒ GSPMV pays less
    /// for extra vectors).
    pub fn with_threads(&self, threads: usize, max_threads: usize) -> Self {
        assert!(threads >= 1 && threads <= max_threads);
        let t = threads as f64 / max_threads as f64;
        // Compute scales ~linearly with threads; bandwidth follows a
        // saturating curve (≈70% of peak from a quarter of the cores).
        let bw_frac = (4.0 * t).min(1.0) * 0.7 + 0.3 * t;
        MachineProfile {
            bandwidth: self.bandwidth * bw_frac.min(1.0),
            flops: self.flops * t,
            k: self.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_byte_per_flop_ratios() {
        assert!((MachineProfile::wsm().byte_per_flop() - 0.511).abs() < 0.05);
        assert!((MachineProfile::snb().byte_per_flop() - 0.367).abs() < 0.01);
    }

    #[test]
    fn snb_has_higher_compute_and_bandwidth() {
        let (w, s) = (MachineProfile::wsm(), MachineProfile::snb());
        assert!(s.flops / w.flops > 1.9 && s.flops / w.flops < 2.1);
        assert!(s.bandwidth / w.bandwidth > 1.3 && s.bandwidth / w.bandwidth < 1.6);
    }

    #[test]
    fn cluster_node_is_slower_in_compute_only() {
        let (w, c) = (MachineProfile::wsm(), MachineProfile::wsm_cluster_node());
        assert!(c.flops < w.flops);
        assert_eq!(c.bandwidth, w.bandwidth);
    }

    #[test]
    fn more_threads_lower_byte_per_flop() {
        let m = MachineProfile::wsm();
        let bf2 = m.with_threads(2, 8).byte_per_flop();
        let bf8 = m.with_threads(8, 8).byte_per_flop();
        assert!(bf8 < bf2, "B/F must fall with threads: {bf2} -> {bf8}");
    }

    #[test]
    fn full_threads_recover_base_profile() {
        let m = MachineProfile::wsm();
        let full = m.with_threads(8, 8);
        assert!((full.flops - m.flops).abs() < 1.0);
        assert!((full.bandwidth - m.bandwidth).abs() < 1.0);
    }
}
