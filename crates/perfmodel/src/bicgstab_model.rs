//! Eq. 8-style cost model for the block-BiCGStab iteration, used to
//! pick coalescing widths for *nonsymmetric* tenants of the solve
//! service (the SPD path uses [`crate::mrhs_model::MrhsModel`]).
//!
//! One block-BiCGStab iteration with `m` right-hand sides costs
//!
//! ```text
//!   T_iter(m) = 2·T(m) + T_dense(m)
//! ```
//!
//! two GSPMVs (`V = A·P`, `T = A·S`), each priced by the Eq. 8 model,
//! plus the dense block machinery: the shadow Grams (`R̃ᵀV`, `R̃ᵀT` or
//! `R̃ᵀR`), the fused residual-update-and-Gram sweeps, and the `X`/`P`
//! update sweeps. Those are `DENSE_SWEEPS` passes over `n·m` doubles
//! with `O(m)` flops per element, so
//!
//! ```text
//!   T_dense(m) = max( DENSE_SWEEPS·n·m·3·s_x / B,
//!                     2·DENSE_SWEEPS·n·m² / F )
//! ```
//!
//! The per-column amortized cost `T_iter(m)/m` is what coalescing
//! optimizes: while GSPMV is bandwidth-bound the fixed matrix stream
//! amortizes and the curve falls; past the switch point the GSPMV term
//! flattens per column while the dense `n·m²` Gram term keeps growing
//! linearly, so the curve turns — the minimizer is interior, sitting at
//! or below the Eq. 8 switch point `m_s`.

use crate::model::{GspmvModel, SX_BYTES};

/// Dense `n·m`-sweep count of one block-BiCGStab iteration: two fused
/// residual-update+Gram sweeps (`S`, `R`), two shadow Grams, and two
/// update sweeps (`X`, `P`).
pub const DENSE_SWEEPS: f64 = 6.0;

/// Per-column cost model of the block-BiCGStab iteration.
#[derive(Clone, Copy, Debug)]
pub struct BicgstabModel {
    /// The Eq. 8 GSPMV model (matrix shape + machine).
    pub gspmv: GspmvModel,
    /// Dense sweeps per iteration; [`DENSE_SWEEPS`] unless calibrated.
    pub dense_sweeps: f64,
}

impl BicgstabModel {
    /// Model with the default sweep count.
    pub fn new(gspmv: GspmvModel) -> Self {
        BicgstabModel { gspmv, dense_sweeps: DENSE_SWEEPS }
    }

    /// Scalar rows `n = 3·nb`.
    fn n(&self) -> f64 {
        3.0 * self.gspmv.nb
    }

    /// Bytes moved by the dense sweeps (each element is read from two
    /// operands and written once).
    pub fn dense_traffic(&self, m: usize) -> f64 {
        self.dense_sweeps * self.n() * m as f64 * 3.0 * SX_BYTES
    }

    /// Flops of the dense sweeps: `O(m)` multiply-adds per element.
    pub fn dense_flops(&self, m: usize) -> f64 {
        2.0 * self.dense_sweeps * self.n() * (m * m) as f64
    }

    /// Predicted dense-machinery time: `max(T_bw, T_comp)`.
    pub fn dense_time(&self, m: usize) -> f64 {
        let bw = self.dense_traffic(m) / self.gspmv.machine.bandwidth;
        let comp = self.dense_flops(m) / self.gspmv.machine.flops;
        bw.max(comp)
    }

    /// Predicted time of one block-BiCGStab iteration with `m` columns.
    pub fn iter_time(&self, m: usize) -> f64 {
        assert!(m >= 1);
        2.0 * self.gspmv.time(m) + self.dense_time(m)
    }

    /// Amortized per-column iteration cost — the quantity coalescing
    /// minimizes (iteration counts are treated as width-invariant; in
    /// practice block solves need *fewer* iterations, so this is the
    /// conservative estimate).
    pub fn per_column_time(&self, m: usize) -> f64 {
        self.iter_time(m) / m as f64
    }

    /// The minimizer of [`BicgstabModel::per_column_time`] over
    /// `1..=max_m`.
    pub fn m_optimal(&self, max_m: usize) -> usize {
        (1..=max_m.max(1))
            .min_by(|&a, &b| {
                self.per_column_time(a)
                    .partial_cmp(&self.per_column_time(b))
                    .unwrap()
            })
            .unwrap()
    }

    /// Predicted per-column speedup of a width-`m` block solve over `m`
    /// independent scalar BiCGStab solves (same iteration count).
    pub fn predicted_speedup(&self, m: usize) -> f64 {
        self.per_column_time(1) / self.per_column_time(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineProfile;

    fn mat2_model() -> BicgstabModel {
        BicgstabModel::new(GspmvModel::from_density(24.9, MachineProfile::wsm()))
    }

    #[test]
    fn per_column_cost_falls_then_rises() {
        let m = mat2_model();
        let mo = m.m_optimal(64);
        assert!(mo > 1 && mo < 64, "interior optimum, got {mo}");
        assert!(m.per_column_time(1) > m.per_column_time(mo));
        assert!(m.per_column_time(64) > m.per_column_time(mo));
    }

    #[test]
    fn optimum_near_gspmv_switch_point() {
        // Past m_s the GSPMV term is flat per column while the dense
        // n·m² Gram term still grows, so the minimizer sits in the
        // switch-point neighbourhood (not at the cap, not at 1).
        let m = mat2_model();
        let ms = m.gspmv.switch_point().expect("dense enough to switch");
        let mo = m.m_optimal(64);
        assert!(mo.abs_diff(ms) <= 3, "m_optimal {mo} vs m_s {ms}");
    }

    #[test]
    fn predicted_speedup_meaningful_at_optimum() {
        let m = mat2_model();
        let s = m.predicted_speedup(m.m_optimal(64));
        assert!(s > 1.2 && s < 10.0, "speedup {s}");
        assert!((m.predicted_speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_gspmvs_dominate_at_width_one() {
        // At m = 1 the iteration is two sparse products plus cheap
        // vector sweeps: the GSPMV share must dominate.
        let m = mat2_model();
        assert!(2.0 * m.gspmv.time(1) > m.dense_time(1));
        assert!(
            (m.iter_time(1) - 2.0 * m.gspmv.time(1) - m.dense_time(1)).abs()
                < 1e-18
        );
    }

    #[test]
    fn dense_term_eventually_dominates() {
        // The n·m² Gram flops outgrow the linear-in-m GSPMV cost, which
        // is what turns the per-column curve upward.
        let m = mat2_model();
        assert!(m.dense_time(256) > 2.0 * m.gspmv.time(256));
    }

    #[test]
    fn sparser_matrix_prefers_wider_batches() {
        // Lower density ⇒ the fixed matrix stream amortizes over more
        // columns before compute takes over (same trend as Fig. 1).
        let sparse = BicgstabModel::new(GspmvModel::from_density(
            6.0,
            MachineProfile::wsm(),
        ));
        let dense = mat2_model();
        assert!(sparse.m_optimal(64) >= dense.m_optimal(64));
    }
}
