//! The MRHS step-time model (paper Eq. 9, 11, 12).
//!
//! With `m` right-hand sides, one chunk costs the block solve
//! (`N` iterations of GSPMV) and the block Chebyshev (`C_max` GSPMVs)
//! once, plus per-step single-vector work; the average per step is
//!
//! ```text
//! T_mrhs(m) = (1/m)·[N·T(m) + C_max·T(m)
//!                    + (m−1)·N₁·T(1) + m·N₂·T(1) + (m−1)·C_max·T(1)]
//! ```
//!
//! Substituting the bandwidth branch of `T(m)` gives the decreasing
//! Eq. 11, the compute branch the increasing Eq. 12; the minimizer sits
//! near the switch point `m_s` (§V-B3, Table VIII).

use crate::model::GspmvModel;

/// Iteration counts entering Eq. 9 (the paper's Fig. 7 uses
/// N = 162, N₁ = 80, N₂ = 63, C_max = 30).
#[derive(Clone, Copy, Debug)]
pub struct SolveCounts {
    /// Cold first-solve iterations `N`.
    pub cold: usize,
    /// Warm first-solve iterations `N₁`.
    pub warm_first: usize,
    /// Warm second-solve iterations `N₂`.
    pub warm_second: usize,
    /// Chebyshev order `C_max`.
    pub cheb_order: usize,
}

impl SolveCounts {
    /// The Fig. 7 calibration values.
    pub fn fig7() -> Self {
        SolveCounts { cold: 162, warm_first: 80, warm_second: 63, cheb_order: 30 }
    }
}

/// Eq. 9 with `T(m)` supplied by the Eq. 8 model.
#[derive(Clone, Copy, Debug)]
pub struct MrhsModel {
    /// The GSPMV cost model.
    pub gspmv: GspmvModel,
    /// Measured iteration counts.
    pub counts: SolveCounts,
}

impl MrhsModel {
    fn amortized(&self, m: usize, t_m: f64) -> f64 {
        let c = &self.counts;
        let t1 = self.gspmv.time(1);
        let (n, n1, n2, cmax) = (
            c.cold as f64,
            c.warm_first as f64,
            c.warm_second as f64,
            c.cheb_order as f64,
        );
        let mf = m as f64;
        ((n + cmax) * t_m
            + (mf - 1.0) * n1 * t1
            + mf * n2 * t1
            + (mf - 1.0) * cmax * t1)
            / mf
    }

    /// Average per-step time (seconds) with `m` right-hand sides, using
    /// `T(m) = max(T_bw, T_comp)`.
    pub fn tmrhs(&self, m: usize) -> f64 {
        assert!(m >= 1);
        self.amortized(m, self.gspmv.time(m))
    }

    /// The bandwidth-bound estimate (paper Eq. 11): decreasing in `m`.
    pub fn tmrhs_bandwidth(&self, m: usize) -> f64 {
        self.amortized(m, self.gspmv.time_bandwidth(m))
    }

    /// The compute-bound estimate (paper Eq. 12): increasing in `m`.
    pub fn tmrhs_compute(&self, m: usize) -> f64 {
        self.amortized(m, self.gspmv.time_compute(m))
    }

    /// Average per-step time of the original algorithm:
    /// `(N + N₂ + C_max)·T(1)`.
    pub fn toriginal(&self) -> f64 {
        let c = &self.counts;
        (c.cold + c.warm_second + c.cheb_order) as f64 * self.gspmv.time(1)
    }

    /// The minimizer of Eq. 9 over `1..=max_m`.
    pub fn m_optimal(&self, max_m: usize) -> usize {
        (1..=max_m.max(1))
            .min_by(|&a, &b| self.tmrhs(a).partial_cmp(&self.tmrhs(b)).unwrap())
            .unwrap()
    }

    /// Predicted end-to-end speedup of MRHS at its optimal `m`.
    pub fn predicted_speedup(&self, max_m: usize) -> f64 {
        self.toriginal() / self.tmrhs(self.m_optimal(max_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineProfile;

    /// The paper's Fig. 7 system: 300k particles, 50% occupancy
    /// (mat2-like density ≈ 25), dual-socket server with 19.4 GB/s.
    fn fig7_model() -> MrhsModel {
        let gspmv = GspmvModel::from_density(24.9, MachineProfile::sd_server());
        MrhsModel { gspmv, counts: SolveCounts::fig7() }
    }

    #[test]
    fn tmrhs_decreases_then_increases() {
        let m = fig7_model();
        let mo = m.m_optimal(40);
        assert!(mo > 1 && mo < 40, "interior optimum, got {mo}");
        assert!(m.tmrhs(1) > m.tmrhs(mo));
        assert!(m.tmrhs(40) > m.tmrhs(mo));
    }

    #[test]
    fn optimal_m_near_switch_point() {
        // Table VIII: m_optimal within a couple of m_s.
        let m = fig7_model();
        let ms = m.gspmv.switch_point().expect("switches");
        let mo = m.m_optimal(40);
        assert!(mo.abs_diff(ms) <= 3, "m_optimal {mo} should be near m_s {ms}");
    }

    #[test]
    fn paper_scale_optimum_and_switch() {
        // Table VIII reports m_s = 12, m_optimal = 10 for this system;
        // the model should land in that neighbourhood.
        let m = fig7_model();
        let ms = m.gspmv.switch_point().unwrap();
        let mo = m.m_optimal(40);
        assert!((6..=16).contains(&ms), "ms = {ms}");
        assert!((6..=16).contains(&mo), "mo = {mo}");
    }

    #[test]
    fn predicted_speedup_in_paper_range() {
        // The paper measures 10–30% end-to-end speedups (Tables VI/VII);
        // the model should predict a gain of that order, not 5× and not
        // a slowdown.
        let m = fig7_model();
        let s = m.predicted_speedup(40);
        assert!(s > 1.05 && s < 2.0, "speedup {s}");
    }

    #[test]
    fn bandwidth_estimate_decreasing_compute_increasing() {
        let m = fig7_model();
        assert!(m.tmrhs_bandwidth(2) > m.tmrhs_bandwidth(16));
        assert!(m.tmrhs_compute(16) < m.tmrhs_compute(32));
        // The achieved curve is bounded below by both estimates at the
        // crossover region.
        for v in [2usize, 8, 16, 32] {
            assert!(
                m.tmrhs(v) + 1e-15 >= m.tmrhs_bandwidth(v).min(m.tmrhs_compute(v))
            );
        }
    }

    #[test]
    fn m1_costs_more_than_original() {
        // With one RHS the chunk solve replaces the cold solve but adds
        // nothing; MRHS(1) ≈ original + no gain (second solve of the
        // head step still runs), so no speedup at m = 1.
        let m = fig7_model();
        assert!(m.tmrhs(1) >= m.toriginal() * 0.95);
    }
}
