//! Host calibration probes.
//!
//! The model's two machine rates are measured on the host the same way
//! the paper measured its machines: bandwidth with a STREAM-triad-like
//! sweep over arrays far larger than cache, and the compute rate by
//! running the basic kernel repeatedly over a block of memory that fits
//! in cache. The probes feed a [`MachineProfile`] so every model-based
//! figure can be regenerated against the hardware this code runs on.

use crate::machine::MachineProfile;
use crate::model::FA_FLOPS;
use mrhs_sparse::{
    gspmv_serial, gspmv_serial_with, BcrsMatrix, Block3, BlockTripletBuilder,
    DedupBcrs, KernelKind, MultiVec, SymmetricBcrs,
};
use std::time::Instant;

/// Measures streaming bandwidth (bytes/second) with a triad
/// `a[i] = b[i] + s·c[i]` over arrays of `words` f64 each, best of
/// `reps` passes. Counts 4 accesses per element (read b, read c, write
/// a with write-allocate), matching the paper's STREAM correction.
pub fn stream_bandwidth(words: usize, reps: usize) -> f64 {
    let n = words.max(1 << 16);
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let s = 3.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for i in 0..n {
            a[i] = b[i] + s * c[i];
        }
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        std::hint::black_box(&a);
    }
    (4 * n * 8) as f64 / best
}

/// Measures the basic-kernel compute rate (flops/second) for `m`
/// vectors: a small dense-banded BCRS matrix that stays in cache is
/// multiplied `reps` times; each block element costs 18 flops per
/// vector.
pub fn kernel_flops(m: usize, reps: usize) -> f64 {
    let a = in_cache_matrix();
    let n = a.n_rows();
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(n, m);
    // warm-up
    gspmv_serial(&a, &x, &mut y);
    let t = Instant::now();
    for _ in 0..reps.max(1) {
        gspmv_serial(&a, &x, &mut y);
        std::hint::black_box(&y);
    }
    let dt = t.elapsed().as_secs_f64();
    (FA_FLOPS * (a.nnz_blocks() * m * reps.max(1)) as f64) / dt
}

/// Times one (serial) GSPMV on `a` with `m` vectors: minimum over
/// `reps` runs, in seconds. The minimum is the noise-robust estimator
/// on shared machines — scheduler steal time only ever *adds* to a
/// sample, so the smallest sample is the closest to the true cost.
pub fn time_gspmv(a: &BcrsMatrix, m: usize, reps: usize) -> f64 {
    let n = a.n_cols();
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(a.n_rows(), m);
    gspmv_serial(a, &x, &mut y); // warm-up
    (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            gspmv_serial(a, &x, &mut y);
            std::hint::black_box(&y);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times one serial GSPMV through an explicitly forced kernel backend
/// (see `mrhs_sparse::backend`): minimum over `reps` runs, in seconds.
/// The per-backend probe behind the kernel ablation bench.
///
/// # Panics
/// When `kind` is unavailable on this host; gate with
/// [`mrhs_sparse::backend_available`].
pub fn time_gspmv_with(
    kind: KernelKind,
    a: &BcrsMatrix,
    m: usize,
    reps: usize,
) -> f64 {
    let n = a.n_cols();
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(a.n_rows(), m);
    gspmv_serial_with(kind, a, &x, &mut y); // warm-up
    (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            gspmv_serial_with(kind, a, &x, &mut y);
            std::hint::black_box(&y);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times one serial dedup-storage GSPMV through the active backend:
/// minimum over `reps` runs, in seconds.
pub fn time_gspmv_dedup(d: &DedupBcrs, m: usize, reps: usize) -> f64 {
    let n = d.n_cols();
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(d.n_rows(), m);
    d.gspmv_serial(&x, &mut y); // warm-up
    (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            d.gspmv_serial(&x, &mut y);
            std::hint::black_box(&y);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the relative-time curve `r(m) = T(m)/T(1)` on the host for
/// the given matrix — the measured counterpart of Fig. 2.
pub fn measured_relative_curve(
    a: &BcrsMatrix,
    ms: &[usize],
    reps: usize,
) -> Vec<(usize, f64)> {
    let t1 = time_gspmv(a, 1, reps);
    ms.iter().map(|&m| (m, time_gspmv(a, m, reps) / t1)).collect()
}

/// Times one symmetric-storage GSPMV with `m` vectors: the serial
/// kernel, or the auto-threaded driver when `parallel` (which honors
/// `RAYON_NUM_THREADS` and falls back to serial below its stored-block
/// threshold). Minimum over `reps` runs, in seconds.
pub fn time_symmetric_gspmv(
    s: &SymmetricBcrs,
    m: usize,
    reps: usize,
    parallel: bool,
) -> f64 {
    let n = s.n_rows();
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(n, m);
    let run = |y: &mut MultiVec| {
        if parallel {
            s.gspmv_parallel(&x, y);
        } else {
            s.gspmv(&x, y);
        }
    };
    run(&mut y); // warm-up
    (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            run(&mut y);
            std::hint::black_box(&y);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measured symmetric-storage `r(m)`, normalized by the *full-storage*
/// single-vector time so the curve is directly comparable with
/// [`measured_relative_curve`] (and with the model's
/// `symmetric_relative_time`).
pub fn measured_symmetric_relative_curve(
    a: &BcrsMatrix,
    s: &SymmetricBcrs,
    ms: &[usize],
    reps: usize,
    parallel: bool,
) -> Vec<(usize, f64)> {
    let t1 = time_gspmv(a, 1, reps);
    ms.iter()
        .map(|&m| (m, time_symmetric_gspmv(s, m, reps, parallel) / t1))
        .collect()
}

/// Builds a host [`MachineProfile`]: measured bandwidth and compute
/// rate (averaged over several `m`, excluding `m = 1` as the paper
/// does), with the paper's typical `k = 3`.
pub fn host_profile() -> MachineProfile {
    let bandwidth = stream_bandwidth(1 << 22, 3);
    let ms = [4usize, 8, 16, 32];
    let flops =
        ms.iter().map(|&m| kernel_flops(m, 20)).sum::<f64>() / ms.len() as f64;
    MachineProfile { bandwidth, flops, k: 3.0 }
}

/// Estimates the cache-reuse parameter `k(m)` of the Eq. 8 traffic
/// model from a *measured*, bandwidth-bound GSPMV time: solve
/// `T·B = m·nb·(3+k)·s_x + 4·nb + nnzb·(4+s_a)` for `k`. The paper
/// reports `k ≈ 3`, only weakly `m`-dependent, for its SD matrices.
/// Negative values are meaningful (§IV-B1): vectors retained in cache
/// between calls. Returns `None` when the matrix term alone exceeds the
/// measured traffic (i.e. the run was not bandwidth-bound).
pub fn estimate_k(
    stats: &mrhs_sparse::MatrixStats,
    bandwidth: f64,
    m: usize,
    measured_time: f64,
) -> Option<f64> {
    let nb = stats.nb as f64;
    let fixed = 4.0 * nb + stats.nnzb as f64 * (4.0 + crate::model::SA_BYTES);
    let vector_bytes = measured_time * bandwidth - fixed;
    let k = vector_bytes / (m as f64 * nb * crate::model::SX_BYTES) - 3.0;
    k.is_finite().then_some(k)
}

/// A banded BCRS matrix small enough to live in L2 (~500 blocks).
fn in_cache_matrix() -> BcrsMatrix {
    let nb = 64;
    let band = 4;
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, Block3::scaled_identity(2.0));
        for d in 1..=band {
            if i + d < nb {
                t.add_symmetric_pair(i, i + d, Block3::scaled_identity(-0.1));
            }
        }
    }
    t.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_probe_is_plausible() {
        let b = stream_bandwidth(1 << 20, 2);
        // Anything from an embedded board to an HBM part.
        assert!(b > 1e8 && b < 1e13, "bandwidth {b}");
    }

    #[test]
    fn kernel_flops_probe_is_plausible() {
        let f = kernel_flops(8, 5);
        assert!(f > 1e7 && f < 1e13, "flops {f}");
    }

    #[test]
    fn relative_curve_starts_at_one_and_grows() {
        let a = in_cache_matrix();
        let curve = measured_relative_curve(&a, &[1, 4, 16], 5);
        assert_eq!(curve[0].0, 1);
        assert!((curve[0].1 - 1.0).abs() < 0.5);
        // 16 vectors cost more than 4 in absolute time terms: r grows.
        assert!(curve[2].1 > curve[1].1 * 0.8);
    }

    #[test]
    fn estimate_k_inverts_the_model() {
        use crate::machine::MachineProfile;
        use crate::model::GspmvModel;
        let stats = mrhs_sparse::MatrixStats {
            n: 30_000,
            nb: 10_000,
            nnz: 9 * 250_000,
            nnzb: 250_000,
        };
        for k_true in [-1.0, 0.0, 3.0, 7.5] {
            let machine =
                MachineProfile { bandwidth: 20e9, flops: 1e18, k: k_true };
            let model = GspmvModel::new(&stats, machine);
            for m in [1usize, 8, 16] {
                let t = model.time_bandwidth(m);
                let k = estimate_k(&stats, 20e9, m, t).unwrap();
                assert!((k - k_true).abs() < 1e-9, "m={m}: {k} vs {k_true}");
            }
        }
    }

    #[test]
    fn host_profile_has_positive_rates() {
        let p = host_profile();
        assert!(p.bandwidth > 0.0 && p.flops > 0.0);
        assert!(p.byte_per_flop() > 0.0);
    }

    #[test]
    fn symmetric_curve_is_finite_and_comparable() {
        let a = in_cache_matrix();
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        for parallel in [false, true] {
            let curve =
                measured_symmetric_relative_curve(&a, &s, &[1, 8], 5, parallel);
            assert_eq!(curve.len(), 2);
            assert!(curve.iter().all(|(_, r)| r.is_finite() && *r > 0.0));
        }
    }

    #[test]
    fn time_gspmv_scales_superlinearly_never() {
        // T(8) should be well under 8× T(1) — vectors amortize the
        // matrix stream (this is the whole point of the paper).
        let a = in_cache_matrix();
        let t1 = time_gspmv(&a, 1, 9);
        let t8 = time_gspmv(&a, 8, 9);
        assert!(t8 < 8.0 * t1 * 1.5, "t1={t1} t8={t8}");
    }
}
