//! Performance models of GSPMV and of the MRHS algorithm.
//!
//! Implements the paper's §IV-B single-node model (Eq. 8): the time of a
//! GSPMV with `m` vectors is the maximum of a bandwidth bound (matrix
//! and vector traffic over achievable bandwidth `B`) and a compute bound
//! (block flops over achievable kernel rate `F`), and its §V-B3 model of
//! the MRHS per-step time (Eq. 9, 11, 12), whose minimizer sits near the
//! bandwidth→compute switch point `m_s`.
//!
//! * [`machine`] — machine parameter sets: the paper's WSM and SNB
//!   processors, their cluster node, and host-calibrated profiles;
//! * [`model`] — Eq. 8, `m_s`, and the Fig. 1 profile grid;
//! * [`measure`] — host probes: STREAM-like bandwidth, basic-kernel
//!   flop rate, and measured relative-time curves `r(m)`;
//! * [`mrhs_model`] — Eq. 9/11/12 and predicted `m_optimal`;
//! * [`bicgstab_model`] — the Eq. 8-style per-iteration cost of block
//!   BiCGStab (two GSPMVs plus dense `n·m²` Gram/update sweeps), whose
//!   per-column minimizer picks coalescing widths for nonsymmetric
//!   tenants of the solve service.

pub mod bicgstab_model;
pub mod machine;
pub mod measure;
pub mod model;
pub mod mrhs_model;

pub use bicgstab_model::BicgstabModel;
pub use machine::MachineProfile;
pub use model::{GspmvModel, SA_BYTES, SX_BYTES};
pub use mrhs_model::MrhsModel;
