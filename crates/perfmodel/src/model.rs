//! The single-node GSPMV performance model (paper Eq. 8).
//!
//! Memory traffic of one GSPMV with `m` vectors:
//!
//! ```text
//!   M_tr(m) = m·nb·(3 + k(m))·s_x + 4·nb + nnzb·(4 + s_a)
//! ```
//!
//! (read X, read+write Y, `k(m)` extra X accesses; 4-byte row pointers
//! and column indices; `s_a = 72`-byte blocks). The bandwidth bound is
//! `M_tr/B`, the compute bound `f_a·m·nnzb/F` with `f_a = 18` flops per
//! block-element multiply, and the predicted time is their maximum.

use crate::machine::MachineProfile;
use mrhs_sparse::MatrixStats;

/// Bytes of a stored 3×3 double-precision block.
pub const SA_BYTES: f64 = 72.0;
/// Bytes of a vector scalar.
pub const SX_BYTES: f64 = 8.0;
/// Flops to multiply one 3×3 block by one vector's 3-element slab.
pub const FA_FLOPS: f64 = 18.0;

/// Eq. 8 specialized to a matrix shape and a machine.
#[derive(Clone, Copy, Debug)]
pub struct GspmvModel {
    /// Block rows `nb`.
    pub nb: f64,
    /// Stored blocks `nnzb`.
    pub nnzb: f64,
    /// Machine parameters.
    pub machine: MachineProfile,
}

impl GspmvModel {
    /// Builds the model from matrix statistics.
    pub fn new(stats: &MatrixStats, machine: MachineProfile) -> Self {
        GspmvModel { nb: stats.nb as f64, nnzb: stats.nnzb as f64, machine }
    }

    /// Builds the model directly from a density `nnzb/nb`, using a
    /// nominal row count (the relative time is row-count invariant).
    pub fn from_density(density: f64, machine: MachineProfile) -> Self {
        GspmvModel { nb: 1.0, nnzb: density, machine }
    }

    /// Average non-zero blocks per block row.
    pub fn density(&self) -> f64 {
        self.nnzb / self.nb
    }

    /// Memory traffic in bytes for `m` vectors.
    pub fn memory_traffic(&self, m: usize) -> f64 {
        m as f64 * self.nb * (3.0 + self.machine.k) * SX_BYTES
            + 4.0 * self.nb
            + self.nnzb * (4.0 + SA_BYTES)
    }

    /// Bandwidth-bound time (seconds).
    pub fn time_bandwidth(&self, m: usize) -> f64 {
        self.memory_traffic(m) / self.machine.bandwidth
    }

    /// Compute-bound time (seconds).
    pub fn time_compute(&self, m: usize) -> f64 {
        FA_FLOPS * m as f64 * self.nnzb / self.machine.flops
    }

    /// Predicted GSPMV time: `max(T_bw, T_comp)`.
    pub fn time(&self, m: usize) -> f64 {
        self.time_bandwidth(m).max(self.time_compute(m))
    }

    /// Relative time `r(m) = T(m)/T_bw(1)` (the single-vector product is
    /// assumed bandwidth-bound, as in the paper).
    pub fn relative_time(&self, m: usize) -> f64 {
        self.time(m) / self.time_bandwidth(1)
    }

    // ---- symmetric-storage variant of Eq. 8 -------------------------
    //
    // Symmetric storage keeps the diagonal plus half of the off-diagonal
    // blocks, so the matrix stream term shrinks to roughly half while
    // the flop count is unchanged (each stored off-diagonal block is
    // applied twice: forward and transposed). The scattered transpose
    // writes are not modeled — these predictions are the bandwidth-bound
    // best case, like the paper's own Eq. 8.

    /// Blocks stored under symmetric storage: the diagonal plus half the
    /// off-diagonal blocks, `(nnzb + nb)/2`.
    pub fn symmetric_stored_blocks(&self) -> f64 {
        (self.nnzb + self.nb) / 2.0
    }

    /// Matrix bytes streamed by the symmetric kernel — the same formula
    /// as [`mrhs_sparse::SymmetricBcrs::stream_bytes`], in model terms.
    pub fn symmetric_matrix_bytes(&self) -> f64 {
        let stored = self.symmetric_stored_blocks();
        stored * SA_BYTES + (stored - self.nb) * 4.0 + 4.0 * self.nb
    }

    /// Memory traffic of a symmetric-storage GSPMV with `m` vectors:
    /// Eq. 8 with the matrix term replaced by
    /// [`GspmvModel::symmetric_matrix_bytes`].
    pub fn symmetric_memory_traffic(&self, m: usize) -> f64 {
        m as f64 * self.nb * (3.0 + self.machine.k) * SX_BYTES
            + self.symmetric_matrix_bytes()
    }

    /// Same traffic but with the matrix term taken from an assembled
    /// matrix's exact [`mrhs_sparse::SymmetricBcrs::stream_bytes`]
    /// rather than the density estimate.
    pub fn symmetric_memory_traffic_exact(
        &self,
        a: &mrhs_sparse::SymmetricBcrs,
        m: usize,
    ) -> f64 {
        m as f64 * self.nb * (3.0 + self.machine.k) * SX_BYTES
            + a.stream_bytes() as f64
    }

    // ---- dedup-storage variant of Eq. 8 -----------------------------
    //
    // Deduplicated storage streams 8 B of indices per stored block
    // (column + pool index) but only 72 B per *unique* block; the pool
    // itself is typically cache-resident, so the bandwidth-bound best
    // case charges it once per multiply. Flops are unchanged — dedup
    // moves bytes, not arithmetic.

    /// Matrix bytes streamed by the dedup kernel, from an assembled
    /// [`mrhs_sparse::DedupBcrs`] — the same formula as its
    /// `stream_bytes()`, in model terms.
    pub fn dedup_matrix_bytes(&self, d: &mrhs_sparse::DedupBcrs) -> f64 {
        d.stream_bytes() as f64
    }

    /// Memory traffic of a dedup-storage GSPMV with `m` vectors: Eq. 8
    /// with the matrix term replaced by the deduplicated stream.
    pub fn dedup_memory_traffic_exact(
        &self,
        d: &mrhs_sparse::DedupBcrs,
        m: usize,
    ) -> f64 {
        m as f64 * self.nb * (3.0 + self.machine.k) * SX_BYTES
            + self.dedup_matrix_bytes(d)
    }

    /// Dedup relative time, normalized against the *full-storage*
    /// single-vector bandwidth time so the curve is directly comparable
    /// with [`GspmvModel::relative_time`]: `r_dedup(1) < 1` reflects
    /// the shrunken matrix stream, and the compute bound is the
    /// full-storage one (dedup changes bytes, not flops).
    pub fn dedup_relative_time_exact(
        &self,
        d: &mrhs_sparse::DedupBcrs,
        m: usize,
    ) -> f64 {
        let bw = self.dedup_memory_traffic_exact(d, m) / self.machine.bandwidth;
        bw.max(self.time_compute(m)) / self.time_bandwidth(1)
    }

    /// Bandwidth-bound time of the symmetric kernel (seconds).
    pub fn symmetric_time_bandwidth(&self, m: usize) -> f64 {
        self.symmetric_memory_traffic(m) / self.machine.bandwidth
    }

    /// Predicted symmetric GSPMV time: `max(T_bw_sym, T_comp)`. The
    /// compute bound is unchanged — symmetry halves the bytes, not the
    /// flops.
    pub fn symmetric_time(&self, m: usize) -> f64 {
        self.symmetric_time_bandwidth(m).max(self.time_compute(m))
    }

    /// Symmetric relative time, normalized against the *full-storage*
    /// single-vector bandwidth time so the curve is directly comparable
    /// with [`GspmvModel::relative_time`]: `r_sym(1) < 1` reflects the
    /// halved matrix stream.
    pub fn symmetric_relative_time(&self, m: usize) -> f64 {
        self.symmetric_time(m) / self.time_bandwidth(1)
    }

    /// Exact-stream-bytes version of
    /// [`GspmvModel::symmetric_relative_time`].
    pub fn symmetric_relative_time_exact(
        &self,
        a: &mrhs_sparse::SymmetricBcrs,
        m: usize,
    ) -> f64 {
        let bw = self.symmetric_memory_traffic_exact(a, m) / self.machine.bandwidth;
        bw.max(self.time_compute(m)) / self.time_bandwidth(1)
    }

    /// Switch point of the symmetric kernel: with about half the fixed
    /// matrix traffic, the compute bound is reached at a smaller `m`
    /// than [`GspmvModel::switch_point`].
    pub fn symmetric_switch_point(&self) -> Option<usize> {
        let comp_slope = FA_FLOPS * self.nnzb * self.machine.byte_per_flop();
        let bw_slope = self.nb * (3.0 + self.machine.k) * SX_BYTES;
        if comp_slope <= bw_slope {
            return None;
        }
        let fixed = self.symmetric_matrix_bytes();
        Some((fixed / (comp_slope - bw_slope)).ceil().max(1.0) as usize)
    }

    // ---- fused matrix-power (SpMPV) variant of Eq. 8 ----------------
    //
    // The level-blocked SpMPV wavefront computes `depth` multiplies
    // (`A·X … A^depth·X`, or `depth` levels of the shifted Chebyshev
    // recurrence) while streaming the matrix ~once: each cache-sized
    // row chunk is reused across all `depth` levels before eviction.
    // Vector traffic still accrues per level — every level reads its
    // input and writes its output — and flops are unchanged, so the
    // payoff exists exactly where Eq. 8 says GSPMV is bandwidth-bound
    // and matrix-stream-dominated (small m, high density).

    /// Matrix bytes of one full-storage stream, `4·nb + nnzb·(4+s_a)` —
    /// the fixed term of Eq. 8 and the unit of the SpMPV acceptance
    /// ratio (fused `depth` multiplies should stream ≈ 1× this).
    pub fn matrix_stream_bytes(&self) -> f64 {
        4.0 * self.nb + self.nnzb * (4.0 + SA_BYTES)
    }

    /// Memory traffic of a fused SpMPV computing `depth` multiplies of
    /// `m` vectors in one matrix stream: per-level vector traffic plus
    /// **one** matrix stream (sequential GSPMV would pay `depth` of
    /// them).
    pub fn spmpv_memory_traffic(&self, m: usize, depth: usize) -> f64 {
        depth as f64 * m as f64 * self.nb * (3.0 + self.machine.k) * SX_BYTES
            + self.matrix_stream_bytes()
    }

    /// Bandwidth-bound time of the fused sweep (seconds).
    pub fn spmpv_time_bandwidth(&self, m: usize, depth: usize) -> f64 {
        self.spmpv_memory_traffic(m, depth) / self.machine.bandwidth
    }

    /// Predicted fused-sweep time: `max(T_bw, depth·T_comp)` — fusion
    /// moves bytes, not flops.
    pub fn spmpv_time(&self, m: usize, depth: usize) -> f64 {
        self.spmpv_time_bandwidth(m, depth).max(depth as f64 * self.time_compute(m))
    }

    /// Predicted speedup of the fused sweep over `depth` sequential
    /// GSPMV calls: `depth·T(m) / T_spmpv(m, depth)`. Approaches the
    /// matrix-stream share of the traffic at small `m` and 1 once the
    /// sweep is compute-bound.
    pub fn spmpv_speedup(&self, m: usize, depth: usize) -> f64 {
        depth as f64 * self.time(m) / self.spmpv_time(m, depth)
    }

    /// The switch point `m_s`: the smallest `m` at which GSPMV becomes
    /// compute-bound, or `None` if it stays bandwidth-bound for all `m`
    /// (e.g. a diagonal matrix, as discussed in §IV-B1).
    pub fn switch_point(&self) -> Option<usize> {
        let d = self.density();
        let comp_slope = FA_FLOPS * d * self.machine.byte_per_flop();
        let bw_slope = (3.0 + self.machine.k) * SX_BYTES;
        if comp_slope <= bw_slope {
            return None;
        }
        let fixed = 4.0 + d * (4.0 + SA_BYTES);
        Some((fixed / (comp_slope - bw_slope)).ceil().max(1.0) as usize)
    }

    /// The largest `m` multipliable within `factor` times the
    /// single-vector time — the quantity plotted in Fig. 1 (factor 2).
    pub fn vectors_within_factor(&self, factor: f64) -> usize {
        assert!(factor >= 1.0);
        let denom = self.memory_traffic(1) / self.nb;
        let d = self.density();
        // Bandwidth constraint: m·(3+k)·sx + 4 + d(4+s_a) ≤ factor·denom
        let bw_cap = (factor * denom - 4.0 - d * (4.0 + SA_BYTES))
            / ((3.0 + self.machine.k) * SX_BYTES);
        // Compute constraint: m·f_a·d·(B/F) ≤ factor·denom
        let comp_cap =
            factor * denom / (FA_FLOPS * d * self.machine.byte_per_flop());
        bw_cap.min(comp_cap).floor().max(1.0) as usize
    }

    /// The Fig. 1 grid: `vectors_within_factor(2)` over a mesh of
    /// densities (x-axis) and byte/flop ratios (y-axis), with `k = 0` as
    /// in the paper's figure.
    pub fn fig1_grid(densities: &[f64], byte_per_flops: &[f64]) -> Vec<Vec<usize>> {
        byte_per_flops
            .iter()
            .map(|&bf| {
                densities
                    .iter()
                    .map(|&d| {
                        let machine =
                            MachineProfile { bandwidth: bf, flops: 1.0, k: 0.0 };
                        GspmvModel::from_density(d, machine)
                            .vectors_within_factor(2.0)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat2_on_wsm() -> GspmvModel {
        // Table I: mat2 has nb = 395k, nnzb = 9M, density 24.9.
        let stats = MatrixStats {
            n: 1_185_000,
            nb: 395_000,
            nnz: 81_000_000,
            nnzb: 9_000_000,
        };
        GspmvModel::new(&stats, MachineProfile::wsm())
    }

    #[test]
    fn relative_time_is_one_at_single_vector() {
        let m = mat2_on_wsm();
        assert!((m.relative_time(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_time_monotone_in_m() {
        let m = mat2_on_wsm();
        let mut last = 0.0;
        for v in 1..48 {
            let r = m.relative_time(v);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn paper_headline_eight_to_sixteen_vectors_at_2x() {
        // The paper measures 12 vectors at 2× for mat2 on WSM and notes
        // (§IV-D1) that measured values sit somewhat below this k=const
        // model; the model should land in the right neighbourhood.
        let mat2 = mat2_on_wsm();
        let v2 = mat2.vectors_within_factor(2.0);
        assert!((10..=20).contains(&v2), "mat2/WSM: {v2}");

        // mat3 on SNB (density 45.3, lower B/F) supports more vectors
        // (paper: 16 measured).
        let stats3 = MatrixStats {
            n: 1_185_000,
            nb: 395_000,
            nnz: 162_000_000,
            nnzb: 17_893_500,
        };
        let mat3 = GspmvModel::new(&stats3, MachineProfile::snb());
        let v3 = mat3.vectors_within_factor(2.0);
        assert!(v3 > v2, "denser matrix on SNB supports more: {v3} vs {v2}");
        assert!((14..=30).contains(&v3), "mat3/SNB: {v3}");
    }

    #[test]
    fn sparse_matrix_supports_fewer_vectors() {
        // mat1: density 5.6 — bandwidth-bound, fewest vectors (paper: 8).
        let stats1 = MatrixStats {
            n: 900_000,
            nb: 300_000,
            nnz: 15_300_000,
            nnzb: 1_700_000,
        };
        let mat1 = GspmvModel::new(&stats1, MachineProfile::wsm());
        let v1 = mat1.vectors_within_factor(2.0);
        let v2 = mat2_on_wsm().vectors_within_factor(2.0);
        assert!(v1 < v2, "mat1 {v1} < mat2 {v2}");
        // Paper measures 8; the optimistic k=const model gives ~11.
        assert!((6..=13).contains(&v1), "mat1/WSM ≈ 8–11: {v1}");
    }

    #[test]
    fn switch_point_matches_bound_crossing() {
        let m = mat2_on_wsm();
        let ms = m.switch_point().expect("dense enough to switch");
        assert!(m.time_compute(ms) >= m.time_bandwidth(ms));
        assert!(m.time_compute(ms - 1) < m.time_bandwidth(ms - 1));
        // Table VIII reports m_s ≈ 12 for the 50%-occupancy system whose
        // density is mat2-like; the model should land nearby.
        assert!((6..=16).contains(&ms), "ms = {ms}");
    }

    #[test]
    fn diagonal_matrix_never_switches() {
        // Density 1 (diagonal): bandwidth-bound for all m (§IV-B1).
        let m = GspmvModel::from_density(1.0, MachineProfile::wsm());
        assert_eq!(m.switch_point(), None);
    }

    #[test]
    fn fig1_grid_trends() {
        // More vectors for denser matrices; fewer for higher B/F, where
        // the (byte-equivalent) compute bound `m·f_a·d·(B/F)` bites
        // sooner. (SNB, with B/F 0.37 < WSM's 0.55, supports 16 vs 12
        // vectors in the paper's measurements.)
        let densities = [6.0, 24.0, 84.0];
        let bfs = [0.02, 0.3, 0.6];
        let grid = GspmvModel::fig1_grid(&densities, &bfs);
        assert_eq!(grid.len(), 3);
        // along density at fixed (low) B/F: denser ⇒ more vectors
        assert!(grid[0][0] <= grid[0][2], "{:?}", grid[0]);
        // along B/F at fixed density: higher B/F ⇒ fewer vectors
        for c in 0..3 {
            assert!(grid[0][c] >= grid[2][c], "col {c}: {grid:?}");
        }
        // Fig 1's colorbar spans ~10..60.
        assert!(grid[0][2] >= 30, "dense/low-B/F corner {}", grid[0][2]);
        assert!(grid[2][0] <= 15, "sparse/high-B/F corner {}", grid[2][0]);
    }

    #[test]
    fn symmetric_curve_sits_below_full_curve() {
        let m = mat2_on_wsm();
        // Halved matrix stream: cheaper at m = 1 …
        assert!(m.symmetric_relative_time(1) < 1.0);
        for v in 1..=48 {
            // … and never worse than full storage at any m.
            assert!(m.symmetric_time(v) <= m.time(v) + 1e-15);
        }
        // Once both are compute-bound the curves coincide (symmetry
        // halves bytes, not flops).
        let big = 64;
        assert!((m.symmetric_time(big) - m.time(big)).abs() <= 1e-12 * m.time(big));
    }

    #[test]
    fn symmetric_switch_point_is_earlier() {
        let m = mat2_on_wsm();
        let full = m.switch_point().unwrap();
        let sym = m.symmetric_switch_point().unwrap();
        assert!(sym <= full, "sym {sym} vs full {full}");
        assert!(m.time_compute(sym) >= m.symmetric_time_bandwidth(sym));
    }

    #[test]
    fn exact_stream_bytes_match_model_on_assembled_matrix() {
        use mrhs_sparse::{Block3, BlockTripletBuilder, SymmetricBcrs};
        let nb = 30;
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        let a = t.build();
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let model = GspmvModel::new(&a.stats(), MachineProfile::wsm());
        // Every row holds a diagonal block, so the density-based formula
        // is exact and the two traffic figures agree for every m.
        for m in [1usize, 8, 16, 32] {
            let est = model.symmetric_memory_traffic(m);
            let exact = model.symmetric_memory_traffic_exact(&s, m);
            assert!((est - exact).abs() <= 1e-9 * exact, "m={m}: {est} vs {exact}");
            assert!(
                (model.symmetric_relative_time(m)
                    - model.symmetric_relative_time_exact(&s, m))
                .abs()
                    <= 1e-12
            );
        }
    }

    #[test]
    fn spmpv_depth_one_is_plain_gspmv() {
        let m = mat2_on_wsm();
        for v in [1usize, 4, 16] {
            assert_eq!(m.spmpv_memory_traffic(v, 1), m.memory_traffic(v));
            assert_eq!(m.spmpv_time(v, 1), m.time(v));
            assert!((m.spmpv_speedup(v, 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn spmpv_streams_matrix_once() {
        let m = mat2_on_wsm();
        for depth in [2usize, 3, 4] {
            // Fused traffic = sequential traffic − (depth−1) saved
            // matrix streams.
            let seq = depth as f64 * m.memory_traffic(4);
            let fused = m.spmpv_memory_traffic(4, depth);
            let saved = (depth - 1) as f64 * m.matrix_stream_bytes();
            assert!((seq - fused - saved).abs() <= 1e-6 * seq);
        }
    }

    #[test]
    fn spmpv_speedup_largest_when_matrix_stream_dominates() {
        let m = mat2_on_wsm();
        // Single vector, bandwidth-bound: fusing depth 4 should win big
        // (the matrix stream is most of the traffic at m = 1).
        let s1 = m.spmpv_speedup(1, 4);
        assert!(s1 > 2.0, "m=1 depth=4 speedup {s1}");
        // Speedup decays with m as vector traffic dilutes the stream …
        assert!(m.spmpv_speedup(8, 4) < s1);
        // … and collapses to 1 once the sweep is compute-bound.
        let s_big = m.spmpv_speedup(64, 4);
        assert!((s_big - 1.0).abs() < 1e-9, "compute-bound speedup {s_big}");
        // Never a slowdown anywhere on the grid.
        for v in [1usize, 2, 4, 8, 16, 32] {
            for d in [1usize, 2, 3, 4] {
                assert!(m.spmpv_speedup(v, d) >= 1.0 - 1e-12, "m={v} depth={d}");
            }
        }
    }

    #[test]
    fn memory_traffic_formula() {
        let m = GspmvModel {
            nb: 10.0,
            nnzb: 50.0,
            machine: MachineProfile { bandwidth: 1.0, flops: 1.0, k: 0.0 },
        };
        // m=2: 2·10·3·8 + 40 + 50·76 = 480 + 40 + 3800
        assert_eq!(m.memory_traffic(2), 4320.0);
    }
}
