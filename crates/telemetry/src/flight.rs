//! The flight recorder: a lock-free ring buffer holding the most
//! recent trace events, dumped to JSON when something goes wrong.
//!
//! Post-hoc snapshots tell you aggregates; a crash or a missed deadline
//! needs the *event-level* history right before it happened. The
//! recorder keeps the last [`capacity`](FlightRecorder::capacity)
//! [`TraceEvent`]s (a few seconds of traffic at serving rates) in a
//! fixed ring:
//!
//! * Writers claim a slot with one `fetch_add` on the cursor and
//!   publish through a per-slot **seqlock** (odd sequence = write in
//!   progress). No locks, no allocation: a writer that collides with a
//!   lagging writer on a wrapped slot skips the event and counts it,
//!   rather than blocking.
//! * Readers ([`snapshot_events`]) copy slots and retry any slot whose
//!   sequence changed mid-copy — dumps never tear an event.
//!
//! Dumps ([`dump_now`]) are written as JSON to the directory configured
//! with [`configure_dump_dir`] (or `MRHS_FLIGHT_DIR`); the service
//! triggers them on solver breakdown, solo retry, and deadline miss,
//! and [`install_panic_hook`] arms a process-wide dump on panic. Dumps
//! are capped per process so a failure storm cannot fill the disk.

use crate::json::Json;
use crate::trace::{name_of, TraceEvent};
use std::cell::UnsafeCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Default ring capacity, in events (~4 MB; a few seconds of traffic
/// at the sampled-event budget). Override with `MRHS_FLIGHT_CAPACITY`
/// or [`configure_capacity`] before the first recorded event.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Dumps written after this many are silently suppressed (counted in
/// [`FlightStats::suppressed_dumps`]).
pub const MAX_DUMPS_PER_PROCESS: u64 = 16;

struct Slot {
    /// Seqlock: 0 = never written; odd = write in progress; even ≥ 2 =
    /// valid data.
    seq: AtomicU64,
    data: UnsafeCell<TraceEvent>,
}

// The UnsafeCell is only read under the seqlock protocol.
unsafe impl Sync for Slot {}

/// The ring buffer. One process-global instance (see [`recorder`]);
/// tests may hold private ones.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    recorded: AtomicU64,
    contended: AtomicU64,
    sampled_out: AtomicU64,
    dumps: AtomicU64,
}

/// Recorder activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Events successfully written to the ring.
    pub recorded: u64,
    /// Events skipped because a wrapped writer still held the slot.
    pub contended: u64,
    /// Events dropped by the tracing sampling budget.
    pub sampled_out: u64,
    /// Dumps written so far.
    pub dumps: u64,
    /// Dumps suppressed by the per-process cap.
    pub suppressed_dumps: u64,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let n = capacity.max(1);
        FlightRecorder {
            slots: (0..n)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: UnsafeCell::new(TraceEvent::default()),
                })
                .collect(),
            cursor: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Writes one event (seqlock publish). Lock-free: on a claim
    /// collision (another writer wrapped onto the same slot and is
    /// still mid-write) the event is dropped and counted instead of
    /// spinning.
    pub fn record(&self, ev: TraceEvent) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(
                    seq,
                    seq | 1,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_err()
        {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Claimed (seq is odd): publish the payload, then bump to the
        // next even value.
        unsafe { *slot.data.get() = ev };
        slot.seq.store((seq | 1).wrapping_add(1), Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every valid event out of the ring, ordered by start time.
    /// Slots written concurrently with the copy are retried a few times
    /// and skipped if still unstable — a dump observes only complete
    /// events.
    pub fn snapshot_events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _ in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break; // never written
                }
                if s1 & 1 == 1 {
                    continue; // mid-write; retry
                }
                let ev = unsafe { *slot.data.get() };
                if slot.seq.load(Ordering::Acquire) == s1 {
                    out.push(ev);
                    break;
                }
            }
        }
        out.sort_by_key(|e| (e.start_ns, e.span));
        out
    }

    /// Activity counters.
    pub fn stats(&self) -> FlightStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let dumps = ld(&self.dumps);
        FlightStats {
            recorded: ld(&self.recorded),
            contended: ld(&self.contended),
            sampled_out: ld(&self.sampled_out),
            dumps: dumps.min(MAX_DUMPS_PER_PROCESS),
            suppressed_dumps: dumps.saturating_sub(MAX_DUMPS_PER_PROCESS),
        }
    }

    /// Renders the ring contents plus `reason` as a JSON dump.
    pub fn dump_json(&self, reason: &str) -> Json {
        let events = self.snapshot_events();
        let stats = self.stats();
        let evs = events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("trace".into(), Json::from_u64(e.trace)),
                    ("span".into(), Json::from_u64(e.span)),
                    ("parent".into(), Json::from_u64(e.parent)),
                    ("name".into(), Json::Str(name_of(e.name))),
                    ("kind".into(), Json::from_u64(e.kind as u64)),
                    ("start_ns".into(), Json::from_u64(e.start_ns)),
                    ("dur_ns".into(), Json::from_u64(e.dur_ns)),
                    ("a".into(), Json::from_u64(e.a)),
                    ("b".into(), Json::from_u64(e.b)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::Str("mrhs-flight-v1".into())),
            ("reason".into(), Json::Str(reason.into())),
            (
                "dumped_unix_ms".into(),
                Json::from_u64(
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0),
                ),
            ),
            ("capacity".into(), Json::from_u64(self.capacity() as u64)),
            ("recorded".into(), Json::from_u64(stats.recorded)),
            ("contended".into(), Json::from_u64(stats.contended)),
            ("sampled_out".into(), Json::from_u64(stats.sampled_out)),
            ("events".into(), Json::Arr(evs)),
        ])
    }
}

// ---------------------------------------------------------------------------
// Process-global recorder and dump plumbing

static CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Sets the global ring capacity. Must run before the first recorded
/// event; later calls are ignored (the ring is already allocated).
pub fn configure_capacity(events: usize) {
    CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// The process-global recorder (created on first use).
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cap = match CAPACITY.load(Ordering::Relaxed) {
            0 => std::env::var("MRHS_FLIGHT_CAPACITY")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CAPACITY),
            n => n,
        };
        FlightRecorder::new(cap)
    })
}

/// Writes one event into the global ring (called by [`crate::trace`]).
pub fn record(ev: TraceEvent) {
    recorder().record(ev);
}

/// Counts an event dropped by the sampling budget.
pub fn note_sampled_out() {
    recorder().sampled_out.fetch_add(1, Ordering::Relaxed);
}

/// Global recorder stats.
pub fn stats() -> FlightStats {
    recorder().stats()
}

/// Copies the global ring (see
/// [`FlightRecorder::snapshot_events`]).
pub fn snapshot_events() -> Vec<TraceEvent> {
    recorder().snapshot_events()
}

fn dump_dir() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| {
        Mutex::new(std::env::var("MRHS_FLIGHT_DIR").ok().map(PathBuf::from))
    })
}

/// Sets (or, with `None`, clears) the directory dumps are written to.
/// Overrides the `MRHS_FLIGHT_DIR` environment default.
pub fn configure_dump_dir(dir: Option<PathBuf>) {
    *dump_dir().lock().unwrap() = dir;
}

/// Dumps the ring to `<dir>/flight-<reason>-<k>.json`. Returns the
/// path written, or `None` when no dump directory is configured, the
/// per-process cap is reached, or the write fails (dumping is a
/// diagnostic of last resort — it must never panic the dumper).
pub fn dump_now(reason: &str) -> Option<PathBuf> {
    let dir = dump_dir().lock().unwrap().clone()?;
    let rec = recorder();
    let k = rec.dumps.fetch_add(1, Ordering::Relaxed);
    if k >= MAX_DUMPS_PER_PROCESS {
        return None;
    }
    let safe: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("flight-{safe}-{k}.json"));
    let text = rec.dump_json(reason).to_string_pretty();
    if std::fs::create_dir_all(&dir).is_err()
        || std::fs::write(&path, text).is_err()
    {
        return None;
    }
    Some(path)
}

/// Installs a panic hook (once) that dumps the ring with reason
/// `panic` before delegating to the previous hook. A no-op dump (no
/// directory configured) keeps the hook harmless in tests.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = dump_now("panic");
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::intern;

    fn ev(span: u64, start_ns: u64) -> TraceEvent {
        TraceEvent {
            trace: 1,
            span,
            parent: 0,
            name: intern("flight/test"),
            kind: crate::trace::KIND_SPAN,
            start_ns,
            dur_ns: 5,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let r = FlightRecorder::new(8);
        for k in 0..20u64 {
            r.record(ev(k, k));
        }
        let events = r.snapshot_events();
        assert_eq!(events.len(), 8);
        // The last 8 writes survive (spans 12..20).
        assert!(events.iter().all(|e| e.span >= 12));
        assert_eq!(r.stats().recorded, 20);
        assert_eq!(r.stats().contended, 0);
    }

    #[test]
    fn concurrent_writers_lose_nothing_below_capacity() {
        let r = std::sync::Arc::new(FlightRecorder::new(4096));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..256u64 {
                    r.record(ev(t * 1000 + k, k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = r.stats();
        assert_eq!(stats.recorded + stats.contended, 8 * 256);
        // Under capacity, claim collisions are impossible: every write
        // lands in a distinct slot.
        assert_eq!(stats.contended, 0);
        assert_eq!(r.snapshot_events().len(), 8 * 256);
    }

    #[test]
    fn snapshot_is_stable_under_concurrent_writes() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let writer = {
            let (r, stop) = (r.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut k = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    r.record(ev(k, k));
                    k += 1;
                }
            })
        };
        for _ in 0..200 {
            for e in r.snapshot_events() {
                // A torn event would show a zero name or default kind
                // mismatch; every observed event must be fully formed.
                assert_eq!(e.dur_ns, 5);
                assert_eq!(e.trace, 1);
            }
        }
        stop.store(1, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn dump_json_carries_reason_and_events() {
        let r = FlightRecorder::new(4);
        r.record(ev(1, 10));
        let j = r.dump_json("breakdown");
        assert_eq!(j.get("reason").and_then(Json::as_str), Some("breakdown"));
        assert_eq!(
            j.get("events").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        let text = j.to_string_pretty();
        assert!(Json::parse(&text).is_ok());
    }
}
