//! A minimal built-in HTTP listener serving live metrics.
//!
//! One background thread, `std::net` only (the container has no
//! crates.io access, so no hyper/axum — exactly like the JSON module
//! stands in for serde). Three routes:
//!
//! * `GET /metrics` — the global registry rendered as OpenMetrics text
//!   ([`crate::openmetrics::render`]); scrape this with Prometheus or
//!   `curl`.
//! * `GET /healthz` — liveness probe (`ok`).
//! * `GET /flight` — the flight recorder's current ring as JSON (the
//!   same document [`crate::flight::dump_now`] writes on a trigger).
//!
//! The listener binds lazily-typically to `127.0.0.1:0` in tests — and
//! serves until the [`MetricsExporter`] is dropped. Requests are
//! handled serially on the accept thread: a scrape every few seconds
//! is the intended load, not a user-facing endpoint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint; dropping it stops the listener.
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, or port 0 for an
    /// ephemeral port) and starts serving on a background thread.
    pub fn serve(addr: &str) -> std::io::Result<MetricsExporter> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mrhs-metrics-exporter".into())
            .spawn(move || accept_loop(listener, &stop2))
            .expect("spawn exporter thread");
        Ok(MetricsExporter { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve serially; a failed client must not kill the
                // exporter thread.
                let _ = handle_client(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_client(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut total = 0usize;
    // Read until the end of the request head (we ignore any body).
    loop {
        if total == buf.len() {
            break;
        }
        let n = stream.read(&mut buf[total..])?;
        if n == 0 {
            break;
        }
        total += n;
        if buf[..total].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..total]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".into())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                crate::openmetrics::render(&crate::snapshot()),
            ),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            "/flight" => (
                "200 OK",
                "application/json",
                crate::flight::recorder().dump_json("scrape").to_string_pretty(),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".into()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Performs one `GET` against a local exporter and returns the
/// response body — the in-tree scrape client used by `service-bench`
/// and tests (the container has no curl-equivalent crate).
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed HTTP response",
            )
        })?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(format!(
            "non-200 response: {}",
            response.lines().next().unwrap_or("")
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_health_and_404() {
        let was = crate::enabled();
        crate::set_enabled(true);
        crate::counter_add("exporter/test_counter", 41);
        let exp = MetricsExporter::serve("127.0.0.1:0").unwrap();
        let addr = exp.local_addr();

        let health = scrape(addr, "/healthz").unwrap();
        assert_eq!(health, "ok\n");

        let metrics = scrape(addr, "/metrics").unwrap();
        assert!(metrics.contains("exporter_test_counter_total 41"), "{metrics}");
        let problems = crate::openmetrics::validate(&metrics);
        assert!(problems.is_empty(), "{problems:?}");

        assert!(scrape(addr, "/nope").is_err());
        crate::set_enabled(was);
    }

    #[test]
    fn flight_route_serves_ring_json() {
        let exp = MetricsExporter::serve("127.0.0.1:0").unwrap();
        let body = scrape(exp.local_addr(), "/flight").unwrap();
        let j = crate::json::Json::parse(&body).unwrap();
        assert_eq!(
            j.get("format").and_then(crate::json::Json::as_str),
            Some("mrhs-flight-v1")
        );
    }
}
