//! Causal request tracing: trace/span identity, context propagation,
//! and sampled event emission into the flight recorder.
//!
//! The post-hoc [`Snapshot`](crate::Snapshot) machinery answers "how
//! much time went where, in aggregate"; it cannot answer "why was
//! *this* request slow". This module adds the per-request axis:
//!
//! * A [`TraceId`] is minted at service ingress (one per request) and
//!   a [`SpanId`] per span. Both are process-unique `u64`s.
//! * A **thread-local context** `(trace, span)` carries the ambient
//!   parent across layers without threading IDs through every solver
//!   and kernel signature: the service worker pushes the batch span as
//!   context, and everything the solve calls — block CG iterations,
//!   GSPMV kernel dispatch, `DistEngine` halo exchange — emits its
//!   events under that parent automatically.
//! * Completed spans and instant points are written as fixed-size
//!   [`TraceEvent`] records into the lock-free flight-recorder ring
//!   ([`crate::flight`]); nothing here allocates on the hot path after
//!   name interning.
//! * **Sampling**: high-frequency events (per-iteration residuals,
//!   per-call kernel spans) pass through a per-second event budget;
//!   once the budget is spent the event is dropped and counted, so
//!   tracing cost stays bounded at saturating load. Structural events
//!   (request roots, batch spans, queue waits) bypass the budget —
//!   their rate is bounded by the request rate itself.
//!
//! Tracing is off by default; enable with [`set_trace_enabled`] or
//! `MRHS_TRACE=1`. It is independent of the metrics flag
//! ([`crate::set_enabled`]) — tracing observes only identities and
//! clocks, never operands, so numerics are bitwise identical either
//! way.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Instant;

/// Default sampled-event budget, events per second per process.
pub const DEFAULT_EVENT_BUDGET_PER_SEC: u64 = 500_000;

/// A request-scoped trace identity (process-unique, never 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// A span identity within a trace (process-unique, never 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Event kinds: a completed span with a duration.
pub const KIND_SPAN: u8 = 0;
/// An instant point event (`dur_ns = 0`; payload in `a`/`b`).
pub const KIND_POINT: u8 = 1;
/// A causal link to another trace (`a` = linked trace id).
pub const KIND_LINK: u8 = 2;

/// One fixed-size trace record. Plain data so the flight recorder can
/// publish it through a seqlock without tearing hazards.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceEvent {
    /// Trace this event belongs to.
    pub trace: u64,
    /// This event's span id (points share their parent's id space).
    pub span: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// Interned name id (resolve with [`name_of`]).
    pub name: u32,
    /// [`KIND_SPAN`], [`KIND_POINT`], or [`KIND_LINK`].
    pub kind: u8,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration (0 for points and links).
    pub dur_ns: u64,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

fn trace_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = std::env::var("MRHS_TRACE")
            .map(|v| matches!(v.as_str(), "1" | "on" | "true"))
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Whether trace events are being recorded. Defaults to the
/// `MRHS_TRACE` environment variable (read once).
pub fn trace_enabled() -> bool {
    trace_flag().load(Ordering::Relaxed)
}

/// Turns tracing on or off at runtime (overrides the environment
/// default).
pub fn set_trace_enabled(on: bool) {
    trace_flag().store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds between the process trace epoch and `t` (0 when `t`
/// precedes the epoch — only possible for Instants captured before the
/// first trace call).
pub fn epoch_ns(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos().min(u64::MAX as u128) as u64
}

/// Nanoseconds since the process trace epoch, now.
pub fn now_ns() -> u64 {
    epoch_ns(Instant::now())
}

fn next_id(cell: &AtomicU64) -> u64 {
    cell.fetch_add(1, Ordering::Relaxed)
}

/// Mints a fresh trace id.
pub fn mint_trace() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    TraceId(next_id(&NEXT))
}

/// Mints a fresh span id.
pub fn mint_span() -> SpanId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    SpanId(next_id(&NEXT))
}

// ---------------------------------------------------------------------------
// Name interning

#[allow(clippy::type_complexity)]
fn names() -> &'static RwLock<(Vec<String>, HashMap<String, u32>)> {
    static NAMES: OnceLock<RwLock<(Vec<String>, HashMap<String, u32>)>> =
        OnceLock::new();
    // Id 0 is reserved so a zeroed event never aliases a real name.
    NAMES.get_or_init(|| {
        let mut map = HashMap::new();
        map.insert("<unknown>".to_string(), 0);
        RwLock::new((vec!["<unknown>".to_string()], map))
    })
}

/// Interns `name`, returning its stable id.
pub fn intern(name: &str) -> u32 {
    if let Some(id) = names().read().unwrap().1.get(name) {
        return *id;
    }
    let mut w = names().write().unwrap();
    if let Some(id) = w.1.get(name) {
        return *id;
    }
    let id = w.0.len() as u32;
    w.0.push(name.to_string());
    w.1.insert(name.to_string(), id);
    id
}

/// Resolves an interned id back to its name.
pub fn name_of(id: u32) -> String {
    let r = names().read().unwrap();
    r.0.get(id as usize).cloned().unwrap_or_else(|| "<unknown>".to_string())
}

// ---------------------------------------------------------------------------
// Sampling budget

struct Budget {
    window_start_ns: AtomicU64,
    used: AtomicU64,
    per_sec: AtomicU64,
}

fn budget() -> &'static Budget {
    static BUDGET: OnceLock<Budget> = OnceLock::new();
    BUDGET.get_or_init(|| Budget {
        window_start_ns: AtomicU64::new(0),
        used: AtomicU64::new(0),
        per_sec: AtomicU64::new(DEFAULT_EVENT_BUDGET_PER_SEC),
    })
}

/// Sets the sampled-event budget (events/second). Events beyond the
/// budget within any one-second window are dropped and counted in
/// [`crate::flight::FlightStats::sampled_out`].
pub fn set_event_budget(per_sec: u64) {
    budget().per_sec.store(per_sec.max(1), Ordering::Relaxed);
}

/// Takes one token from the budget; `false` means the caller must drop
/// the event. Windows are fixed one-second intervals; the first writer
/// past a window boundary resets the counter.
fn budget_take(now: u64) -> bool {
    let b = budget();
    let ws = b.window_start_ns.load(Ordering::Relaxed);
    if now.saturating_sub(ws) >= 1_000_000_000
        && b.window_start_ns
            .compare_exchange(ws, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    {
        b.used.store(0, Ordering::Relaxed);
    }
    b.used.fetch_add(1, Ordering::Relaxed) < b.per_sec.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Context propagation

thread_local! {
    /// `(trace, span)`; `(0, 0)` = no ambient context.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// The ambient `(trace, parent span)` on this thread, if any.
pub fn current() -> Option<(TraceId, SpanId)> {
    let (t, s) = CURRENT.with(Cell::get);
    (t != 0).then_some((TraceId(t), SpanId(s)))
}

/// RAII context override; restores the previous context on drop.
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Makes `(trace, span)` the ambient context on this thread until the
/// guard drops — how a worker adopts a request's identity across the
/// queue handoff.
pub fn push_context(trace: TraceId, span: SpanId) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace((trace.0, span.0)));
    ContextGuard { prev }
}

// ---------------------------------------------------------------------------
// Emission

fn emit(ev: TraceEvent) {
    crate::flight::record(ev);
}

/// Records a completed span with explicit timing — used where the span
/// brackets an interval measured elsewhere (a queue wait whose start
/// was captured at submit, an engine phase timed by a worker thread).
#[allow(clippy::too_many_arguments)]
pub fn emit_span_at(
    trace: TraceId,
    span: SpanId,
    parent: SpanId,
    name: &str,
    start_ns: u64,
    dur_ns: u64,
    a: u64,
    b: u64,
) {
    if !trace_enabled() {
        return;
    }
    emit(TraceEvent {
        trace: trace.0,
        span: span.0,
        parent: parent.0,
        name: intern(name),
        kind: KIND_SPAN,
        start_ns,
        dur_ns,
        a,
        b,
    });
}

/// Records an instant point under the ambient context, subject to the
/// sampling budget. No-op without a context.
pub fn point(name: &str, a: u64, b: u64) {
    if !trace_enabled() {
        return;
    }
    let Some((trace, parent)) = current() else { return };
    let now = now_ns();
    if !budget_take(now) {
        crate::flight::note_sampled_out();
        return;
    }
    emit(TraceEvent {
        trace: trace.0,
        span: mint_span().0,
        parent: parent.0,
        name: intern(name),
        kind: KIND_POINT,
        start_ns: now,
        dur_ns: 0,
        a,
        b,
    });
}

/// Records a causal link (`a` = linked trace id) under an explicit
/// parent. Links are structural: they bypass the sampling budget.
pub fn link(trace: TraceId, parent: SpanId, name: &str, a: u64, b: u64) {
    if !trace_enabled() {
        return;
    }
    emit(TraceEvent {
        trace: trace.0,
        span: mint_span().0,
        parent: parent.0,
        name: intern(name),
        kind: KIND_LINK,
        start_ns: now_ns(),
        dur_ns: 0,
        a,
        b,
    });
}

/// An in-flight span: emits a [`KIND_SPAN`] event on drop and makes
/// itself the ambient context while alive.
pub struct TraceSpan {
    trace: u64,
    span: u64,
    parent: u64,
    name: u32,
    start: Instant,
    prev: (u64, u64),
}

impl TraceSpan {
    /// This span's trace.
    pub fn trace_id(&self) -> TraceId {
        TraceId(self.trace)
    }

    /// This span's id.
    pub fn span_id(&self) -> SpanId {
        SpanId(self.span)
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        let start_ns = epoch_ns(self.start);
        emit(TraceEvent {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name,
            kind: KIND_SPAN,
            start_ns,
            dur_ns: now_ns().saturating_sub(start_ns),
            a: 0,
            b: 0,
        });
    }
}

fn open_span(trace: u64, parent: u64, name: &str) -> TraceSpan {
    let span = mint_span().0;
    let prev = CURRENT.with(|c| c.replace((trace, span)));
    TraceSpan {
        trace,
        span,
        parent,
        name: intern(name),
        start: Instant::now(),
        prev,
    }
}

/// Opens a root span on a freshly minted trace (no parent). `None`
/// while tracing is disabled.
pub fn root_span(name: &str) -> Option<TraceSpan> {
    trace_enabled().then(|| open_span(mint_trace().0, 0, name))
}

/// Opens a child span under the ambient context, subject to the
/// sampling budget (whole spans are sampled at open, never half
/// recorded). `None` while tracing is disabled, without a context, or
/// when the budget is spent.
pub fn child_span(name: &str) -> Option<TraceSpan> {
    if !trace_enabled() {
        return None;
    }
    let (trace, parent) = current().map(|(t, s)| (t.0, s.0))?;
    if !budget_take(now_ns()) {
        crate::flight::note_sampled_out();
        return None;
    }
    Some(open_span(trace, parent, name))
}

// ---------------------------------------------------------------------------
// Tree assembly

/// One node of an assembled span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span event itself.
    pub event: TraceEvent,
    /// Resolved span name.
    pub name: String,
    /// Child spans, by start time.
    pub children: Vec<SpanNode>,
    /// Point events recorded directly under this span, by time.
    pub points: Vec<TraceEvent>,
    /// Link events recorded directly under this span, by time.
    pub links: Vec<TraceEvent>,
}

impl SpanNode {
    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total spans in this subtree (self included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Renders the subtree as an indented text listing.
    pub fn render(&self) -> String {
        fn walk(n: &SpanNode, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            out.push_str(&format!(
                "{pad}{} [{:.3} ms @ +{:.3} ms]\n",
                n.name,
                n.event.dur_ns as f64 / 1e6,
                n.event.start_ns as f64 / 1e6,
            ));
            for p in &n.points {
                out.push_str(&format!(
                    "{pad}  · {} (a={}, b={:#x})\n",
                    name_of(p.name),
                    p.a,
                    p.b
                ));
            }
            for l in &n.links {
                out.push_str(&format!(
                    "{pad}  → {} trace {}\n",
                    name_of(l.name),
                    l.a
                ));
            }
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

/// Assembles the span tree of one trace from a flat event slice
/// (e.g. a flight-recorder snapshot). Returns `None` when the trace
/// has no root span among `events`. Spans whose parent is missing
/// (evicted from the ring) are grafted under the root so nothing is
/// silently dropped.
pub fn assemble(events: &[TraceEvent], trace: TraceId) -> Option<SpanNode> {
    let mut spans: Vec<&TraceEvent> = Vec::new();
    let mut others: Vec<&TraceEvent> = Vec::new();
    for e in events.iter().filter(|e| e.trace == trace.0) {
        if e.kind == KIND_SPAN {
            spans.push(e);
        } else {
            others.push(e);
        }
    }
    let root = *spans.iter().find(|e| e.parent == 0)?;
    let ids: std::collections::HashSet<u64> =
        spans.iter().map(|e| e.span).collect();
    let mut nodes: HashMap<u64, SpanNode> = spans
        .iter()
        .map(|e| {
            (
                e.span,
                SpanNode {
                    event: **e,
                    name: name_of(e.name),
                    children: Vec::new(),
                    points: Vec::new(),
                    links: Vec::new(),
                },
            )
        })
        .collect();
    for e in others {
        let target = if ids.contains(&e.parent) { e.parent } else { root.span };
        if let Some(n) = nodes.get_mut(&target) {
            if e.kind == KIND_LINK {
                n.links.push(*e);
            } else {
                n.points.push(*e);
            }
        }
    }
    // Attach children deepest-first: repeatedly move spans whose parent
    // node still exists. Orphans (parent evicted) fall to the root.
    let mut order: Vec<u64> =
        spans.iter().filter(|e| e.span != root.span).map(|e| e.span).collect();
    order.sort_by_key(|id| std::cmp::Reverse(nodes[id].event.start_ns));
    for id in order {
        let node = nodes.remove(&id).unwrap();
        let parent = node.event.parent;
        let target = if nodes.contains_key(&parent) { parent } else { root.span };
        nodes.get_mut(&target).unwrap().children.push(node);
    }
    let mut root_node = nodes.remove(&root.span)?;
    fn sort_rec(n: &mut SpanNode) {
        n.children.sort_by_key(|c| c.event.start_ns);
        n.points.sort_by_key(|p| p.start_ns);
        n.links.sort_by_key(|l| l.start_ns);
        for c in &mut n.children {
            sort_rec(c);
        }
    }
    sort_rec(&mut root_node);
    Some(root_node)
}

/// Like [`assemble`], then grafts every trace referenced by a
/// [`KIND_LINK`] event (`a` = linked trace id) as an extra child of the
/// linking span — the request-centric view of a coalesced batch: the
/// request's `joined_batch` link pulls the shared batch tree in under
/// it. One level of links only (batches do not link onward).
pub fn assemble_linked(events: &[TraceEvent], trace: TraceId) -> Option<SpanNode> {
    let mut root = assemble(events, trace)?;
    fn graft(n: &mut SpanNode, events: &[TraceEvent]) {
        let linked: Vec<u64> = n.links.iter().map(|l| l.a).collect();
        for t in linked {
            if let Some(sub) = assemble(events, TraceId(t)) {
                n.children.push(sub);
            }
        }
        n.children.sort_by_key(|c| c.event.start_ns);
        for c in &mut n.children {
            graft(c, events);
        }
    }
    graft(&mut root, events);
    Some(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = mint_trace();
        let b = mint_trace();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        let s = mint_span();
        let t = mint_span();
        assert_ne!(s, t);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("trace/test/stable");
        let b = intern("trace/test/stable");
        assert_eq!(a, b);
        assert_eq!(name_of(a), "trace/test/stable");
        assert_eq!(name_of(9_999_999), "<unknown>");
    }

    #[test]
    fn context_nests_and_restores() {
        assert!(current().is_none());
        let t = mint_trace();
        let s = mint_span();
        {
            let _g = push_context(t, s);
            assert_eq!(current(), Some((t, s)));
            let s2 = mint_span();
            {
                let _g2 = push_context(t, s2);
                assert_eq!(current(), Some((t, s2)));
            }
            assert_eq!(current(), Some((t, s)));
        }
        assert!(current().is_none());
    }

    #[test]
    fn assemble_builds_parent_child_tree() {
        let t = 77_000_001u64;
        let name_root = intern("req");
        let name_mid = intern("mid");
        let name_leaf = intern("leaf");
        let name_pt = intern("pt");
        let ev = |span, parent, name, kind, start_ns| TraceEvent {
            trace: t,
            span,
            parent,
            name,
            kind,
            start_ns,
            dur_ns: 10,
            a: 0,
            b: 0,
        };
        let events = vec![
            ev(3, 2, name_leaf, KIND_SPAN, 30),
            ev(1, 0, name_root, KIND_SPAN, 0),
            ev(2, 1, name_mid, KIND_SPAN, 10),
            ev(4, 2, name_pt, KIND_POINT, 35),
        ];
        let tree = assemble(&events, TraceId(t)).unwrap();
        assert_eq!(tree.name, "req");
        assert_eq!(tree.span_count(), 3);
        let mid = tree.find("mid").unwrap();
        assert_eq!(mid.children.len(), 1);
        assert_eq!(mid.children[0].name, "leaf");
        assert_eq!(mid.points.len(), 1);
        assert!(tree.find("leaf").is_some());
        assert!(tree.find("absent").is_none());
    }

    #[test]
    fn assemble_linked_grafts_referenced_trace() {
        let ta = 88_000_001u64;
        let tb = 88_000_002u64;
        let events = vec![
            TraceEvent {
                trace: ta,
                span: 1,
                parent: 0,
                name: intern("request"),
                kind: KIND_SPAN,
                start_ns: 0,
                dur_ns: 100,
                ..Default::default()
            },
            TraceEvent {
                trace: ta,
                span: 2,
                parent: 1,
                name: intern("joined"),
                kind: KIND_LINK,
                start_ns: 5,
                a: tb,
                ..Default::default()
            },
            TraceEvent {
                trace: tb,
                span: 3,
                parent: 0,
                name: intern("batch"),
                kind: KIND_SPAN,
                start_ns: 10,
                dur_ns: 50,
                ..Default::default()
            },
        ];
        let tree = assemble_linked(&events, TraceId(ta)).unwrap();
        assert!(tree.find("batch").is_some(), "{}", tree.render());
    }

    #[test]
    fn orphaned_span_falls_to_root() {
        let t = 99_000_001u64;
        let mk = |span, parent| TraceEvent {
            trace: t,
            span,
            parent,
            name: intern("n"),
            kind: KIND_SPAN,
            start_ns: span,
            dur_ns: 1,
            ..Default::default()
        };
        // Parent 55 was evicted from the ring; span 9 must still appear.
        let events = vec![mk(1, 0), mk(9, 55)];
        let tree = assemble(&events, TraceId(t)).unwrap();
        assert_eq!(tree.span_count(), 2);
    }
}
