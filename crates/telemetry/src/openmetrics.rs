//! OpenMetrics text rendering of a [`Snapshot`], plus a validator.
//!
//! The live exporter ([`crate::exporter`]) serves this format so any
//! standard scraper (Prometheus and friends) can consume the service's
//! queue-depth and batch-width histograms, per-width throughput
//! counters, and model-drift gauges without bespoke tooling. The
//! mapping from the registry's `/`-separated taxonomy:
//!
//! * counter `service/batches` → `service_batches_total`
//! * span `service/solve` → `service_solve_seconds_total` (float
//!   seconds) and `service_solve_calls_total`
//! * histogram `service/batch_width` → `service_batch_width` histogram
//!   with cumulative `_bucket{le="..."}` series at the log₂ boundaries,
//!   `_count`, and `_sum`
//! * gauge `drift/m_optimal/measured` → `drift_m_optimal_measured`
//!
//! [`validate`] checks the grammar-level invariants a scraper relies
//! on (name charset, TYPE/sample consistency, cumulative buckets,
//! the `# EOF` terminator) and is used both by tests and by the CI
//! scrape leg.

use crate::snapshot::Snapshot;

/// Maps a registry name onto the OpenMetrics charset
/// `[a-zA-Z_][a-zA-Z0-9_]*` (slashes and other separators become `_`).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders `snapshot` as an OpenMetrics text exposition (ends with
/// `# EOF`).
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} counter\n"));
        out.push_str(&format!("{n}_total {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        if v.is_finite() {
            out.push_str(&format!("{n} {}\n", fmt_value(*v)));
        } else {
            // OpenMetrics has no NaN gauges worth scraping; surface the
            // poisoned value explicitly rather than emitting "NaN".
            out.push_str(&format!("{n} 0\n"));
        }
    }
    for (name, s) in &snapshot.spans {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n}_seconds counter\n"));
        out.push_str(&format!("{n}_seconds_total {}\n", fmt_value(s.secs())));
        out.push_str(&format!("# TYPE {n}_calls counter\n"));
        out.push_str(&format!("{n}_calls_total {}\n", s.count));
    }
    for (name, h) in &snapshot.histograms {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (b, c) in &h.buckets {
            cumulative += c;
            // Bucket `b` holds values v with 2^(b-1) <= v < 2^b, so
            // le = 2^b − 1 is the inclusive integer upper bound.
            let le =
                if *b >= 64 { u64::MAX } else { (1u64 << b).saturating_sub(1) };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_count {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
    }
    out.push_str("# EOF\n");
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates an OpenMetrics exposition at the level a scraper cares
/// about. Returns every problem found (empty = valid):
///
/// * every line is a `# TYPE`/`# HELP`/`# UNIT`/`# EOF` comment or a
///   `name[{labels}] value` sample with a parseable value;
/// * metric and label names use the legal charset; `# TYPE` is not
///   repeated for a family;
/// * histogram `_bucket` series are cumulative (non-decreasing in file
///   order) and end with an `le="+Inf"` bucket equal to `_count`;
/// * exactly one `# EOF`, on the final line.
pub fn validate(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut seen_types: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();
    let mut bucket_state: std::collections::BTreeMap<String, (u64, Option<u64>)> =
        std::collections::BTreeMap::new(); // name -> (last cumulative, +Inf)
    let mut counts: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut eof_seen = false;
    let lines: Vec<&str> = text.lines().collect();
    for (ln, line) in lines.iter().enumerate() {
        let where_ = |what: &str| format!("line {}: {what}: {line:?}", ln + 1);
        if eof_seen {
            problems.push(where_("content after # EOF"));
            break;
        }
        if line.is_empty() {
            problems.push(where_("empty line"));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            match it.next() {
                Some("EOF") | None => eof_seen = true,
                Some("TYPE") => {
                    let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                        problems.push(where_("malformed TYPE"));
                        continue;
                    };
                    if !valid_name(name) {
                        problems.push(where_("bad metric family name"));
                    }
                    if seen_types.insert(name.into(), kind.into()).is_some() {
                        problems.push(where_("duplicate TYPE for family"));
                    }
                }
                Some("HELP") | Some("UNIT") => {}
                Some(_) => problems.push(where_("unknown comment keyword")),
            }
            continue;
        }
        if *line == "#EOF" || line.starts_with('#') {
            // OpenMetrics comments must be `# ` prefixed.
            if *line == "# EOF" {
                eof_seen = true;
            } else {
                problems.push(where_("bare # comment"));
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(i) => line.split_at(i),
            None => {
                problems.push(where_("sample without value"));
                continue;
            }
        };
        if !valid_name(name_part) {
            problems.push(where_("bad sample name"));
            continue;
        }
        let (labels, value_part) = if let Some(r) = rest.strip_prefix('{') {
            match r.find('}') {
                Some(j) => (&r[..j], r[j + 1..].trim_start()),
                None => {
                    problems.push(where_("unterminated label set"));
                    continue;
                }
            }
        } else {
            ("", rest.trim_start())
        };
        for lbl in labels.split(',').filter(|s| !s.is_empty()) {
            let Some((k, v)) = lbl.split_once('=') else {
                problems.push(where_("label without ="));
                continue;
            };
            if !valid_name(k) {
                problems.push(where_("bad label name"));
            }
            if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                problems.push(where_("unquoted label value"));
            }
        }
        let value_str = value_part.split_whitespace().next().unwrap_or("");
        let value: f64 = match value_str.parse() {
            Ok(v) => v,
            Err(_) => {
                problems.push(where_("unparseable value"));
                continue;
            }
        };
        if let Some(base) = name_part.strip_suffix("_bucket") {
            let entry = bucket_state.entry(base.to_string()).or_insert((0, None));
            if labels.contains("le=\"+Inf\"") {
                entry.1 = Some(value as u64);
            } else {
                if (value as u64) < entry.0 {
                    problems.push(where_("histogram buckets not cumulative"));
                }
                entry.0 = value as u64;
            }
        } else if let Some(base) = name_part.strip_suffix("_count") {
            counts.insert(base.to_string(), value as u64);
        }
    }
    if !eof_seen {
        problems.push("missing # EOF terminator".into());
    }
    for (base, (last, inf)) in &bucket_state {
        match inf {
            None => problems.push(format!("histogram {base}: no +Inf bucket")),
            Some(inf) => {
                if *last > *inf {
                    problems.push(format!(
                        "histogram {base}: buckets exceed +Inf ({last} > {inf})"
                    ));
                }
                if let Some(c) = counts.get(base) {
                    if c != inf {
                        problems.push(format!(
                            "histogram {base}: _count {c} != +Inf bucket {inf}"
                        ));
                    }
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistSnapshot, SpanStat};

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("service/batches".into(), 12);
        s.counters.insert("service/batch_width/08".into(), 7);
        s.gauges.insert("drift/m_optimal/measured".into(), 8.0);
        s.gauges.insert("drift/gspmv/m8/residual".into(), -0.125);
        s.spans
            .insert("service/solve".into(), SpanStat { count: 3, total_ns: 1_500 });
        s.histograms.insert(
            "service/queue_depth_cols".into(),
            HistSnapshot { count: 5, sum: 40, buckets: vec![(1, 2), (3, 3)] },
        );
        s
    }

    #[test]
    fn render_is_valid_openmetrics() {
        let text = render(&sample_snapshot());
        let problems = validate(&text);
        assert!(problems.is_empty(), "{problems:?}\n{text}");
        assert!(text.contains("service_batches_total 12"));
        assert!(text.contains("service_batch_width_08_total 7"));
        assert!(text.contains("drift_m_optimal_measured 8"));
        assert!(text.contains("service_solve_calls_total 3"));
        assert!(text.contains("service_queue_depth_cols_bucket{le=\"1\"} 2"));
        assert!(text.contains("service_queue_depth_cols_bucket{le=\"7\"} 5"));
        assert!(text.contains("service_queue_depth_cols_bucket{le=\"+Inf\"} 5"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn sanitize_maps_separators() {
        assert_eq!(sanitize_name("service/solve"), "service_solve");
        assert_eq!(sanitize_name("a-b.c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn validator_rejects_malformations() {
        assert!(!validate("no_value\n# EOF\n").is_empty());
        assert!(!validate("x 1\n").is_empty(), "missing EOF");
        assert!(!validate("9bad 1\n# EOF\n").is_empty());
        assert!(!validate("x{le=unquoted} 1\n# EOF\n").is_empty());
        assert!(!validate("x 1\n# EOF\nx 2\n").is_empty(), "after EOF");
        let non_cumulative = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
                              h_bucket{le=\"+Inf\"} 5\nh_count 5\n# EOF\n";
        assert!(!validate(non_cumulative).is_empty());
        let count_mismatch = "h_bucket{le=\"+Inf\"} 5\nh_count 6\n# EOF\n";
        assert!(!validate(count_mismatch).is_empty());
    }

    #[test]
    fn validator_accepts_minimal_valid_text() {
        let ok = "# TYPE a counter\na_total 3\n# EOF\n";
        assert!(validate(ok).is_empty());
    }
}
