//! Minimal JSON value, serializer, and parser.
//!
//! The build container has no crates.io access, so serde is not
//! available; this module is the telemetry crate's in-tree stand-in,
//! exactly like `shims/rayon` stands in for rayon. It implements the
//! whole JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) with two deliberate choices:
//!
//! * Objects preserve insertion order (`Vec<(String, Json)>`), so
//!   serialized reports are stable and diffable.
//! * Non-finite numbers serialize as `null` — JSON has no NaN/Inf —
//!   which downstream schema validation then rejects, turning a NaN
//!   derived metric into a *visible* failure instead of a silently
//!   wrong number.
//!
//! Integers up to 2⁵³ round-trip exactly (stored as `f64`, serialized
//! via the shortest round-trip `Display`); every metric this workspace
//! records is far below that.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the serialization of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64` (exact for values below 2⁵³).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v)
                if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented serialization.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    // Rust's Display for f64 is the shortest decimal
                    // that round-trips.
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by this schema;
                        // lone surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a char boundary).
                let s = &b[*pos..];
                let ch = std::str::from_utf8(&s[..s.len().min(4)])
                    .ok()
                    .and_then(|t| t.chars().next())
                    .or_else(|| {
                        std::str::from_utf8(s).ok().and_then(|t| t.chars().next())
                    })
                    .ok_or("invalid utf-8 in string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::from_u64(1)),
            ("name".into(), Json::Str("bench \"quick\"\nrun".into())),
            (
                "values".into(),
                Json::Arr(vec![
                    Json::Num(1.5),
                    Json::Num(-3.25e-9),
                    Json::Bool(true),
                    Json::Null,
                ]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn integers_round_trip_exactly() {
        let v = Json::from_u64(9_007_199_254_740_992); // 2^53
        let text = v.to_string_compact();
        assert_eq!(text, "9007199254740992");
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(1 << 53));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("nule").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let j = Json::parse(r#"{"s": "aéb\t\"c\" μ"}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str().unwrap(), "aéb\t\"c\" μ");
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(Json::Num(1.0).get("x").is_none());
        assert!(Json::Arr(vec![]).get("x").is_none());
    }
}
