//! Unified telemetry for the MRHS workspace.
//!
//! The paper's whole argument is quantitative — Eq. 8's bandwidth bound,
//! the Tables VI/VII step breakdowns, the Fig. 8 comm/compute overlap —
//! so every hot layer of this workspace reports into one place:
//!
//! * [`Registry`] — a thread-safe metrics registry holding **atomic
//!   counters** (`gspmv/flops`, `engine/halo_bytes`, …), **hierarchical
//!   span timers** with RAII guards (`solver/block_cg/iter`,
//!   `mrhs/first_solve`, `engine/node0/comm_wait`, …), and **simple
//!   histograms** (log₂-bucketed nanoseconds, for per-iteration
//!   latencies).
//! * [`Snapshot`] — a point-in-time copy of the registry with
//!   [`Snapshot::diff`] semantics, so an experiment brackets itself with
//!   two snapshots and reports only its own increments.
//! * [`json`] — a minimal JSON value type with serializer and parser.
//!   The build container has no crates.io access, so this stands in for
//!   serde-JSON exactly like the `shims/` crates stand in for rayon and
//!   friends; it implements the subset the [`report`] schema needs.
//! * [`derived`] — achieved GB/s and GF/s from counters + span times,
//!   relative residuals against model predictions, and span-tree
//!   consistency (children must sum to their parent's wall-clock).
//! * [`report`] — the versioned [`report::BenchReport`] the `repro
//!   --json` flag writes, so CI accumulates a machine-readable perf
//!   trajectory instead of free text.
//!
//! ## Global registry and zero-cost disabling
//!
//! Instrumentation sites call the free functions ([`counter_add`],
//! [`span`], [`time_span`], …), which forward to a process-global
//! [`Registry`] **only when telemetry is enabled** — via
//! [`set_enabled`]`(true)` or the `MRHS_TELEMETRY=1` environment
//! variable. Disabled (the default), every call is one relaxed atomic
//! load and a branch: no clock reads, no allocation, no locks.
//! Telemetry only ever *observes* timings and sizes — it never touches
//! an operand — so numerics are bitwise identical with it on or off
//! (the oracle determinism suite runs under `MRHS_TELEMETRY=1` in CI to
//! pin exactly that).
//!
//! ## Span taxonomy
//!
//! Span names are `/`-separated paths; a span named `a/b/c` is a child
//! of `a/b`. The workspace convention (see DESIGN.md §12):
//!
//! * `kernel/…`  — GSPMV invocations (`kernel/gspmv/m8`, `kernel/gspmv_sym/m8`)
//! * `solver/…`  — solver totals and phases (`solver/block_cg`,
//!   `solver/block_cg/init`, `solver/block_cg/iter`, `solver/cheb/apply`)
//! * `mrhs/…`    — the Alg. 2 driver's step phases, mirroring
//!   `StepTimings` (`mrhs/assemble`, `mrhs/cheb_vectors`, …)
//! * `engine/…`  — distributed engine (`engine/node3/comm_wait`, …)

pub mod derived;
pub mod exporter;
pub mod flight;
pub mod json;
pub mod openmetrics;
pub mod registry;
pub mod report;
pub mod snapshot;
pub mod trace;

pub use exporter::MetricsExporter;
pub use registry::{Registry, SpanGuard};
pub use snapshot::{HistSnapshot, Snapshot, SpanStat};
pub use trace::{SpanId, TraceEvent, TraceId, TraceSpan};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = std::env::var("MRHS_TELEMETRY")
            .map(|v| matches!(v.as_str(), "1" | "on" | "true"))
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Whether the global registry records anything. Defaults to the
/// `MRHS_TELEMETRY` environment variable (read once).
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turns global recording on or off at runtime (overrides the
/// environment default).
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// The process-global registry. Accessible even while disabled (e.g. to
/// snapshot whatever was recorded before disabling).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `v` to the named global counter (no-op while disabled).
#[inline]
pub fn counter_add(name: &str, v: u64) {
    if enabled() {
        global().counter_add(name, v);
    }
}

/// Opens an RAII span on the global registry; the guard records the
/// elapsed wall-clock into the span on drop. While disabled this
/// returns an inert guard without reading the clock.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        global().span(name)
    } else {
        SpanGuard::inert()
    }
}

/// Times `f`, returning its result and the elapsed duration, and
/// records the duration under `name` when telemetry is enabled. The
/// clock is read whether or not telemetry is on — this is the helper
/// for call sites (the MRHS driver) that need the duration themselves;
/// `StepTimings` is built from exactly these durations, making it a
/// thin view over the recorded spans.
#[inline]
pub fn time_span<T>(name: &str, f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    let dt = t.elapsed();
    if enabled() {
        global().record_span(name, dt);
    }
    (out, dt)
}

/// Records an externally measured duration under `name` (no-op while
/// disabled) — how the distributed engine reports phase timings that
/// its worker threads measured themselves.
#[inline]
pub fn record_span_secs(name: &str, secs: f64) {
    if enabled() {
        global().record_span(name, Duration::from_secs_f64(secs.max(0.0)));
    }
}

/// Records a nanosecond sample into the named global histogram (no-op
/// while disabled).
#[inline]
pub fn histogram_record_ns(name: &str, ns: u64) {
    if enabled() {
        global().histogram_record_ns(name, ns);
    }
}

/// Sets the named global gauge — a last-write-wins instantaneous
/// reading (no-op while disabled). The service's model-drift gauges
/// (`drift/gspmv/m{w}/…`, `drift/m_optimal/…`) live here.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        global().gauge_set(name, v);
    }
}

/// Current accumulated state of a global span timer (all-zero if never
/// entered). Reads even while disabled.
pub fn span_stat(name: &str) -> SpanStat {
    global().span_stat(name)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_global_records_nothing() {
        // Tests run in one process; use names unique to this test and
        // force the flag off around it.
        let was = enabled();
        set_enabled(false);
        counter_add("test/disabled_counter", 3);
        {
            let _g = span("test/disabled_span");
        }
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test/disabled_counter"));
        assert!(!snap.spans.contains_key("test/disabled_span"));
        set_enabled(was);
    }

    #[test]
    fn enabled_global_records() {
        let was = enabled();
        set_enabled(true);
        counter_add("test/enabled_counter", 2);
        counter_add("test/enabled_counter", 5);
        let ((), dt) = time_span("test/enabled_span", || {
            std::hint::black_box(());
        });
        let snap = snapshot();
        assert_eq!(snap.counters["test/enabled_counter"], 7);
        let s = &snap.spans["test/enabled_span"];
        assert_eq!(s.count, 1);
        assert!(s.total_ns >= dt.as_nanos() as u64);
        set_enabled(was);
    }
}
