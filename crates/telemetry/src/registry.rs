//! The metrics registry: atomic counters, span timers, histograms.
//!
//! Names are interned in per-kind maps guarded by plain mutexes; the
//! hot path after interning is a lock-free atomic add. A GSPMV records
//! a handful of counters per *call* (never per row), so the lock is
//! taken a few times per multiply — noise next to the multiply itself.

use crate::snapshot::{HistSnapshot, Snapshot, SpanStat};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of log₂ buckets in a histogram: bucket `i` counts samples
/// `v` with `64 - v.leading_zeros() == i`, i.e. `2^(i-1) ≤ v < 2^i`
/// (bucket 0 holds `v == 0`). 64 buckets cover the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

pub(crate) struct SpanCell {
    pub total_ns: AtomicU64,
    pub count: AtomicU64,
}

pub(crate) struct HistCell {
    pub count: AtomicU64,
    pub sum: AtomicU64,
    pub buckets: [AtomicU64; HIST_BUCKETS],
}

/// Thread-safe metrics registry. The free functions in the crate root
/// forward to a process-global instance; tests and tools may hold
/// private instances (a private registry always records — the global
/// enable flag only gates the global one).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    spans: Mutex<HashMap<String, Arc<SpanCell>>>,
    hists: Mutex<HashMap<String, Arc<HistCell>>>,
    // Gauges store f64 bits in an AtomicU64 (last write wins).
    gauges: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn span_cell(&self, name: &str) -> Arc<SpanCell> {
        let mut map = self.spans.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(SpanCell {
                    total_ns: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                });
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn hist_cell(&self, name: &str) -> Arc<HistCell> {
        let mut map = self.hists.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(HistCell {
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                });
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0f64.to_bits()));
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Adds `v` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, v: u64) {
        self.counter_cell(name).fetch_add(v, Ordering::Relaxed);
    }

    /// Sets the named gauge to `v`. Unlike counters and spans, gauges
    /// are last-write-wins instantaneous readings (a model-drift ratio,
    /// a measured m_optimal) — `diff` passes them through unchanged.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauge_cell(name).store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value of a gauge (`None` if never set).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .unwrap()
            .get(name)
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Current accumulated state of one span timer (all-zero if never
    /// entered). Cheaper than a full [`Registry::snapshot`] for call
    /// sites that bracket a single span — the drift gauges read
    /// `kernel/gspmv/m{w}` deltas around each batch solve this way.
    pub fn span_stat(&self, name: &str) -> SpanStat {
        self.spans
            .lock()
            .unwrap()
            .get(name)
            .map(|c| SpanStat {
                count: c.count.load(Ordering::Relaxed),
                total_ns: c.total_ns.load(Ordering::Relaxed),
            })
            .unwrap_or_default()
    }

    /// Opens an RAII span: the returned guard adds the elapsed
    /// wall-clock to `name` when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard { active: Some((self.span_cell(name), Instant::now())) }
    }

    /// Records an externally measured duration under `name`.
    pub fn record_span(&self, name: &str, dt: Duration) {
        let cell = self.span_cell(name);
        cell.total_ns.fetch_add(
            dt.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one nanosecond sample into the named histogram.
    pub fn histogram_record_ns(&self, name: &str, ns: u64) {
        let cell = self.hist_cell(name);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(ns, Ordering::Relaxed);
        let bucket = (64 - ns.leading_zeros()) as usize;
        cell.buckets[bucket.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let spans = self
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    SpanStat {
                        count: v.count.load(Ordering::Relaxed),
                        total_ns: v.total_ns.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        let histograms = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                let buckets: Vec<(u8, u64)> = v
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u8, n))
                    })
                    .collect();
                (
                    k.clone(),
                    HistSnapshot {
                        count: v.count.load(Ordering::Relaxed),
                        sum: v.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        Snapshot { counters, spans, histograms, gauges }
    }
}

/// RAII span timer: records the time from construction to drop. An
/// inert guard (telemetry disabled) carries no clock reading and
/// records nothing.
pub struct SpanGuard {
    active: Option<(Arc<SpanCell>, Instant)>,
}

impl SpanGuard {
    /// A guard that does nothing on drop.
    pub fn inert() -> Self {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.active.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            cell.total_ns.fetch_add(ns, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter_add("a", 1);
        r.counter_add("a", 2);
        r.counter_add("b", 5);
        assert_eq!(r.counter_value("a"), 3);
        assert_eq!(r.counter_value("b"), 5);
        assert_eq!(r.counter_value("never"), 0);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let r = Registry::new();
        {
            let _g = r.span("s");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let s = &snap.spans["s"];
        assert_eq!(s.count, 1);
        assert!(s.total_ns >= 1_000_000, "{}", s.total_ns);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let r = Registry::new();
        r.histogram_record_ns("h", 0);
        r.histogram_record_ns("h", 1);
        r.histogram_record_ns("h", 2);
        r.histogram_record_ns("h", 3);
        r.histogram_record_ns("h", 1024);
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        // v=0 → bucket 0; v=1 → bucket 1; v∈{2,3} → bucket 2; 1024 → 11.
        let get = |b: u8| {
            h.buckets.iter().find(|(i, _)| *i == b).map(|(_, n)| *n).unwrap_or(0)
        };
        assert_eq!(get(0), 1);
        assert_eq!(get(1), 1);
        assert_eq!(get(2), 2);
        assert_eq!(get(11), 1);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        assert_eq!(r.gauge_value("g"), None);
        r.gauge_set("g", 3.5);
        r.gauge_set("g", -0.25);
        assert_eq!(r.gauge_value("g"), Some(-0.25));
        assert_eq!(r.snapshot().gauges["g"], -0.25);
    }

    #[test]
    fn span_stat_reads_without_snapshot() {
        let r = Registry::new();
        assert_eq!(r.span_stat("s"), SpanStat::default());
        r.record_span("s", Duration::from_nanos(250));
        r.record_span("s", Duration::from_nanos(750));
        assert_eq!(r.span_stat("s"), SpanStat { count: 2, total_ns: 1000 });
    }

    #[test]
    fn concurrent_counter_increments_lose_nothing() {
        let r = std::sync::Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    r.counter_add("contended", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter_value("contended"), 80_000);
    }
}
