//! Point-in-time registry snapshots with diff semantics.
//!
//! Counters, span totals, and histogram buckets are all monotone
//! non-decreasing, so an experiment measures itself as
//! `after.diff(&before)`: per-key saturating subtraction, with keys
//! born between the two snapshots kept in full and keys absent from
//! `after` dropped. `diff` is associative with accumulation —
//! `c.diff(&a) == c.diff(&b) + b.diff(&a)` key-wise — which is what
//! makes nested bracketing sound.

use crate::json::Json;
use std::collections::BTreeMap;

/// Accumulated state of one span timer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered (or externally recorded).
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
}

impl SpanStat {
    /// Total seconds.
    pub fn secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Accumulated state of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (nanoseconds).
    pub sum: u64,
    /// Sparse `(log2_bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u8, u64)>,
}

impl HistSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A copy of every metric at one instant. Keys are sorted so snapshots
/// print and serialize deterministically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Span stats by name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Gauge values by name — instantaneous readings, not monotone;
    /// `diff` keeps the later snapshot's value as-is.
    pub gauges: BTreeMap<String, f64>,
}

impl Snapshot {
    /// The increments between `earlier` and `self`: saturating per-key
    /// subtraction. Keys created after `earlier` appear in full; keys
    /// missing from `self` are dropped.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, v)| {
                let e = earlier.spans.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    SpanStat {
                        count: v.count.saturating_sub(e.count),
                        total_ns: v.total_ns.saturating_sub(e.total_ns),
                    },
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let e = earlier.histograms.get(k);
                let buckets = v
                    .buckets
                    .iter()
                    .map(|(b, n)| {
                        let before = e
                            .and_then(|h| h.buckets.iter().find(|(eb, _)| eb == b))
                            .map(|(_, n)| *n)
                            .unwrap_or(0);
                        (*b, n.saturating_sub(before))
                    })
                    .filter(|(_, n)| *n > 0)
                    .collect();
                (
                    k.clone(),
                    HistSnapshot {
                        count: v
                            .count
                            .saturating_sub(e.map(|h| h.count).unwrap_or(0)),
                        sum: v.sum.saturating_sub(e.map(|h| h.sum).unwrap_or(0)),
                        buckets,
                    },
                )
            })
            .collect();
        // Gauges are point-in-time readings; the diff of two snapshots
        // reports the later reading unchanged.
        let gauges = self.gauges.clone();
        Snapshot { counters, spans, histograms, gauges }
    }

    /// Seconds accumulated under a span name (0 when absent).
    pub fn span_secs(&self, name: &str) -> f64 {
        self.spans.get(name).map(|s| s.secs()).unwrap_or(0.0)
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// JSON form (see [`crate::report`] for the enclosing schema).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
                .collect(),
        );
        let spans = Json::Obj(
            self.spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::from_u64(s.count)),
                            ("total_ns".into(), Json::from_u64(s.total_ns)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Json::Arr(
                        h.buckets
                            .iter()
                            .map(|(b, n)| {
                                Json::Arr(vec![
                                    Json::from_u64(*b as u64),
                                    Json::from_u64(*n),
                                ])
                            })
                            .collect(),
                    );
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::from_u64(h.count)),
                            ("sum".into(), Json::from_u64(h.sum)),
                            ("buckets".into(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| {
                    // Non-finite gauges serialize as null (the JSON
                    // module has no NaN literal); from_json restores
                    // them as NaN.
                    (k.clone(), Json::Num(*v))
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("spans".into(), spans),
            ("histograms".into(), histograms),
            ("gauges".into(), gauges),
        ])
    }

    /// Parses the [`Snapshot::to_json`] form back.
    pub fn from_json(j: &Json) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (k, v) in j.get("counters").and_then(Json::as_obj).ok_or("counters")? {
            snap.counters.insert(
                k.clone(),
                v.as_u64().ok_or_else(|| format!("counter {k}"))?,
            );
        }
        for (k, v) in j.get("spans").and_then(Json::as_obj).ok_or("spans")? {
            let count = v.get("count").and_then(Json::as_u64);
            let total_ns = v.get("total_ns").and_then(Json::as_u64);
            let (Some(count), Some(total_ns)) = (count, total_ns) else {
                return Err(format!("span {k}"));
            };
            snap.spans.insert(k.clone(), SpanStat { count, total_ns });
        }
        for (k, v) in
            j.get("histograms").and_then(Json::as_obj).ok_or("histograms")?
        {
            let count =
                v.get("count").and_then(Json::as_u64).ok_or("hist count")?;
            let sum = v.get("sum").and_then(Json::as_u64).ok_or("hist sum")?;
            let mut buckets = Vec::new();
            for pair in
                v.get("buckets").and_then(Json::as_arr).ok_or("hist buckets")?
            {
                let p = pair.as_arr().ok_or("bucket pair")?;
                let b = p.first().and_then(Json::as_u64).ok_or("bucket idx")?;
                let n = p.get(1).and_then(Json::as_u64).ok_or("bucket count")?;
                buckets.push((b as u8, n));
            }
            snap.histograms.insert(k.clone(), HistSnapshot { count, sum, buckets });
        }
        // Absent in pre-v3 snapshots; tolerate that.
        if let Some(gauges) = j.get("gauges").and_then(Json::as_obj) {
            for (k, v) in gauges {
                snap.gauges.insert(k.clone(), v.as_f64().unwrap_or(f64::NAN));
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::default();
        for (k, v) in pairs {
            s.counters.insert(k.to_string(), *v);
        }
        s
    }

    #[test]
    fn diff_subtracts_per_key() {
        let before = snap(&[("a", 3), ("b", 10)]);
        let after = snap(&[("a", 5), ("b", 10), ("c", 7)]);
        let d = after.diff(&before);
        assert_eq!(d.counter("a"), 2);
        assert_eq!(d.counter("b"), 0);
        assert_eq!(d.counter("c"), 7); // born between snapshots
    }

    #[test]
    fn diff_is_consistent_with_accumulation() {
        let a = snap(&[("x", 2)]);
        let b = snap(&[("x", 9)]);
        let c = snap(&[("x", 11)]);
        assert_eq!(
            c.diff(&a).counter("x"),
            c.diff(&b).counter("x") + b.diff(&a).counter("x")
        );
    }

    #[test]
    fn span_diff_subtracts_both_fields() {
        let mut before = Snapshot::default();
        before.spans.insert("s".into(), SpanStat { count: 2, total_ns: 1000 });
        let mut after = Snapshot::default();
        after.spans.insert("s".into(), SpanStat { count: 5, total_ns: 4000 });
        let d = after.diff(&before);
        assert_eq!(d.spans["s"], SpanStat { count: 3, total_ns: 3000 });
        assert!((d.span_secs("s") - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn gauges_pass_through_diff() {
        let mut before = Snapshot::default();
        before.gauges.insert("g".into(), 4.0);
        let mut after = Snapshot::default();
        after.gauges.insert("g".into(), 2.5);
        after.gauges.insert("h".into(), -1.0);
        let d = after.diff(&before);
        assert_eq!(d.gauges["g"], 2.5);
        assert_eq!(d.gauges["h"], -1.0);
    }

    #[test]
    fn json_round_trip() {
        let mut s = Snapshot::default();
        s.counters.insert("gspmv/flops".into(), 123456789);
        s.gauges.insert("drift/m_optimal/measured".into(), 8.0);
        s.spans
            .insert("solver/block_cg".into(), SpanStat { count: 4, total_ns: 987 });
        s.histograms.insert(
            "solver/block_cg/iter".into(),
            HistSnapshot { count: 3, sum: 30, buckets: vec![(4, 2), (5, 1)] },
        );
        let text = s.to_json().to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = Snapshot::from_json(&parsed).unwrap();
        assert_eq!(s, back);
    }
}
