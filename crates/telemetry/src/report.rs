//! The versioned `BenchReport` written by `repro --json`.
//!
//! A report is the machine-readable record of one harness run: the
//! machine's calibrated rates, the raw registry snapshot (diffed to the
//! run), per-kernel derived metrics with their Eq. 8 model predictions
//! and residuals, and the span-tree consistency checks. CI uploads the
//! file as an artifact (`BENCH_repro.json`), and
//! [`BenchReport::validate`] is the gate: any NaN or zero derived rate,
//! schema drift, or a span decomposition off by more than the
//! tolerance fails the run visibly.
//!
//! Model-prediction fields are *filled by the caller* (the bench crate
//! owns the Eq. 8 model; this crate stays dependency-free) — the schema
//! just insists they are present and finite.

use crate::derived::SpanConsistency;
use crate::json::Json;
use crate::snapshot::Snapshot;

/// Current schema version; bump on any incompatible field change.
/// Version 2 added `machine.isa` and `machine.kernel_backend`.
/// Version 3 added `trace_overhead` (optional), `drift_gauges`, and the
/// `gauges` map inside `snapshot`.
pub const SCHEMA_VERSION: u64 = 3;

/// Span decompositions must close within this relative tolerance.
pub const SPAN_CONSISTENCY_TOL: f64 = 0.05;

/// Host description and calibrated machine rates (the two Eq. 8
/// parameters, measured the way `perfmodel::measure` measures them).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Worker-pool width the run used.
    pub threads: u64,
    /// Detected SIMD instruction set (`avx512` / `avx2` / `neon` /
    /// `portable`).
    pub isa: String,
    /// Kernel backend the run dispatched to (`simd` / `scalar` /
    /// `generic`).
    pub kernel_backend: String,
    /// Measured STREAM-triad bandwidth, bytes/second (Eq. 8's `B`).
    pub stream_bandwidth_bps: f64,
    /// Measured basic-kernel compute rate, flops/second (Eq. 8's `F`).
    pub kernel_flops: f64,
    /// Cache-reuse parameter `k` used by the model predictions.
    pub model_k: f64,
}

/// Measured-vs-modeled record for one kernel at one `m`.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelMetric {
    /// Kernel name (`gspmv`, `gspmv_sym`, …).
    pub name: String,
    /// Right-hand sides per multiply.
    pub m: u64,
    /// Timed invocations aggregated here.
    pub calls: u64,
    /// Mean measured seconds per invocation.
    pub measured_secs: f64,
    /// Matrix bytes streamed per invocation.
    pub matrix_bytes: f64,
    /// Vector bytes streamed per invocation: X read, Y write-allocate,
    /// and Y write-back — the 3-access accounting of Eq. 8 without the
    /// `k(m)` reuse term.
    pub vector_bytes: f64,
    /// Flops per invocation (18 per stored block per vector).
    pub flops: f64,
    /// Achieved GB/s: `(matrix_bytes + vector_bytes) / measured_secs`.
    pub measured_gbps: f64,
    /// Achieved GF/s: `flops / measured_secs`.
    pub measured_gflops: f64,
    /// Eq. 8 predicted seconds per invocation, `max(T_bw, T_comp)`.
    pub model_secs: f64,
    /// The model's implied GB/s at this `m`.
    pub model_gbps: f64,
    /// Relative residual `(measured_secs − model_secs)/model_secs`.
    pub residual: f64,
}

/// Cost of causal tracing measured by the `service-bench --trace`
/// overhead gate: the same saturating replay with tracing off, then on.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceOverhead {
    /// Sustained RHS/s with tracing off.
    pub baseline_rhs_per_sec: f64,
    /// Sustained RHS/s with tracing on.
    pub traced_rhs_per_sec: f64,
    /// `1 − traced/baseline` (positive = tracing costs throughput).
    pub overhead_frac: f64,
    /// Trace events the flight recorder accepted during the traced run.
    pub events_recorded: u64,
    /// Events the sampler dropped to stay under the event budget.
    pub events_sampled_out: u64,
}

/// One named model-drift gauge reading (measured-vs-Eq. 8/9 state at
/// the end of the run), lifted out of the snapshot so trajectory
/// tooling can track drift without digging through the gauge map.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftGauge {
    /// Gauge name (`drift/gspmv/m8/ratio`, `drift/m_optimal/measured`…).
    pub name: String,
    /// The reading.
    pub value: f64,
}

/// The complete report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Experiment id (the `repro` subcommand, e.g. `quick`).
    pub experiment: String,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// Host description and calibrated rates.
    pub machine: MachineInfo,
    /// Per-kernel derived metrics with model residuals.
    pub kernels: Vec<KernelMetric>,
    /// Span-tree decomposition checks.
    pub span_consistency: Vec<SpanConsistency>,
    /// Tracing overhead measurement (absent when the harness did not
    /// run the overhead gate — e.g. plain `repro` experiments).
    pub trace_overhead: Option<TraceOverhead>,
    /// Model-drift gauge readings at the end of the run (may be empty
    /// for harnesses that never solve through the service).
    pub drift_gauges: Vec<DriftGauge>,
    /// Raw registry increments for the run.
    pub snapshot: Snapshot,
}

impl BenchReport {
    /// Serializes the report (pretty, stable field order).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    fn to_json(&self) -> Json {
        let machine = Json::Obj(vec![
            ("os".into(), Json::Str(self.machine.os.clone())),
            ("arch".into(), Json::Str(self.machine.arch.clone())),
            ("threads".into(), Json::from_u64(self.machine.threads)),
            ("isa".into(), Json::Str(self.machine.isa.clone())),
            (
                "kernel_backend".into(),
                Json::Str(self.machine.kernel_backend.clone()),
            ),
            (
                "stream_bandwidth_bps".into(),
                Json::Num(self.machine.stream_bandwidth_bps),
            ),
            ("kernel_flops".into(), Json::Num(self.machine.kernel_flops)),
            ("model_k".into(), Json::Num(self.machine.model_k)),
        ]);
        let kernels = Json::Arr(
            self.kernels
                .iter()
                .map(|k| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(k.name.clone())),
                        ("m".into(), Json::from_u64(k.m)),
                        ("calls".into(), Json::from_u64(k.calls)),
                        ("measured_secs".into(), Json::Num(k.measured_secs)),
                        ("matrix_bytes".into(), Json::Num(k.matrix_bytes)),
                        ("vector_bytes".into(), Json::Num(k.vector_bytes)),
                        ("flops".into(), Json::Num(k.flops)),
                        ("measured_gbps".into(), Json::Num(k.measured_gbps)),
                        ("measured_gflops".into(), Json::Num(k.measured_gflops)),
                        ("model_secs".into(), Json::Num(k.model_secs)),
                        ("model_gbps".into(), Json::Num(k.model_gbps)),
                        ("residual".into(), Json::Num(k.residual)),
                    ])
                })
                .collect(),
        );
        let consistency = Json::Arr(
            self.span_consistency
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("parent".into(), Json::Str(c.parent.clone())),
                        ("parent_secs".into(), Json::Num(c.parent_secs)),
                        ("children_secs".into(), Json::Num(c.children_secs)),
                        ("ratio".into(), Json::Num(c.ratio)),
                    ])
                })
                .collect(),
        );
        let trace_overhead = match &self.trace_overhead {
            None => Json::Null,
            Some(t) => Json::Obj(vec![
                ("baseline_rhs_per_sec".into(), Json::Num(t.baseline_rhs_per_sec)),
                ("traced_rhs_per_sec".into(), Json::Num(t.traced_rhs_per_sec)),
                ("overhead_frac".into(), Json::Num(t.overhead_frac)),
                ("events_recorded".into(), Json::from_u64(t.events_recorded)),
                ("events_sampled_out".into(), Json::from_u64(t.events_sampled_out)),
            ]),
        };
        let drift_gauges = Json::Arr(
            self.drift_gauges
                .iter()
                .map(|g| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(g.name.clone())),
                        ("value".into(), Json::Num(g.value)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("schema_version".into(), Json::from_u64(self.schema_version)),
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("created_unix_ms".into(), Json::from_u64(self.created_unix_ms)),
            ("machine".into(), machine),
            ("kernels".into(), kernels),
            ("span_consistency".into(), consistency),
            ("trace_overhead".into(), trace_overhead),
            ("drift_gauges".into(), drift_gauges),
            ("snapshot".into(), self.snapshot.to_json()),
        ])
    }

    /// Parses a serialized report back.
    pub fn from_json_str(text: &str) -> Result<BenchReport, String> {
        let j = Json::parse(text)?;
        let num = |o: &Json, k: &str| {
            o.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing/invalid number `{k}`"))
        };
        let uint = |o: &Json, k: &str| {
            o.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing/invalid integer `{k}`"))
        };
        let string = |o: &Json, k: &str| {
            o.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing/invalid string `{k}`"))
        };

        let mj = j.get("machine").ok_or("missing `machine`")?;
        let machine = MachineInfo {
            os: string(mj, "os")?,
            arch: string(mj, "arch")?,
            threads: uint(mj, "threads")?,
            isa: string(mj, "isa")?,
            kernel_backend: string(mj, "kernel_backend")?,
            stream_bandwidth_bps: num(mj, "stream_bandwidth_bps")?,
            kernel_flops: num(mj, "kernel_flops")?,
            model_k: num(mj, "model_k")?,
        };
        let mut kernels = Vec::new();
        for k in
            j.get("kernels").and_then(Json::as_arr).ok_or("missing `kernels`")?
        {
            kernels.push(KernelMetric {
                name: string(k, "name")?,
                m: uint(k, "m")?,
                calls: uint(k, "calls")?,
                measured_secs: num(k, "measured_secs")?,
                matrix_bytes: num(k, "matrix_bytes")?,
                vector_bytes: num(k, "vector_bytes")?,
                flops: num(k, "flops")?,
                measured_gbps: num(k, "measured_gbps")?,
                measured_gflops: num(k, "measured_gflops")?,
                model_secs: num(k, "model_secs")?,
                model_gbps: num(k, "model_gbps")?,
                residual: num(k, "residual")?,
            });
        }
        let mut span_consistency = Vec::new();
        for c in j
            .get("span_consistency")
            .and_then(Json::as_arr)
            .ok_or("missing `span_consistency`")?
        {
            span_consistency.push(SpanConsistency {
                parent: string(c, "parent")?,
                parent_secs: num(c, "parent_secs")?,
                children_secs: num(c, "children_secs")?,
                ratio: num(c, "ratio")?,
            });
        }
        let trace_overhead = match j.get("trace_overhead") {
            None | Some(Json::Null) => None,
            Some(t) => Some(TraceOverhead {
                baseline_rhs_per_sec: num(t, "baseline_rhs_per_sec")?,
                traced_rhs_per_sec: num(t, "traced_rhs_per_sec")?,
                overhead_frac: num(t, "overhead_frac")?,
                events_recorded: uint(t, "events_recorded")?,
                events_sampled_out: uint(t, "events_sampled_out")?,
            }),
        };
        let mut drift_gauges = Vec::new();
        for g in j
            .get("drift_gauges")
            .and_then(Json::as_arr)
            .ok_or("missing `drift_gauges`")?
        {
            drift_gauges.push(DriftGauge {
                name: string(g, "name")?,
                value: num(g, "value")?,
            });
        }
        let snapshot =
            Snapshot::from_json(j.get("snapshot").ok_or("missing `snapshot`")?)?;
        Ok(BenchReport {
            schema_version: uint(&j, "schema_version")?,
            experiment: string(&j, "experiment")?,
            created_unix_ms: uint(&j, "created_unix_ms")?,
            machine,
            kernels,
            span_consistency,
            trace_overhead,
            drift_gauges,
            snapshot,
        })
    }

    /// Validates the report against the schema's semantic constraints.
    /// Returns every problem found (empty = valid). This is what makes
    /// a NaN GB/s fail CI instead of shipping.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.schema_version != SCHEMA_VERSION {
            problems.push(format!(
                "schema_version {} != supported {SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.experiment.is_empty() {
            problems.push("empty experiment id".into());
        }
        let positive = |problems: &mut Vec<String>, what: &str, v: f64| {
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!("{what} must be finite and > 0, got {v}"));
            }
        };
        positive(
            &mut problems,
            "machine.stream_bandwidth_bps",
            self.machine.stream_bandwidth_bps,
        );
        positive(&mut problems, "machine.kernel_flops", self.machine.kernel_flops);
        if self.machine.threads == 0 {
            problems.push("machine.threads must be >= 1".into());
        }
        if !self.machine.model_k.is_finite() {
            problems.push("machine.model_k must be finite".into());
        }
        if self.machine.isa.is_empty() {
            problems.push("machine.isa must be non-empty".into());
        }
        if self.machine.kernel_backend.is_empty() {
            problems.push("machine.kernel_backend must be non-empty".into());
        }
        if self.kernels.is_empty() {
            problems.push("no kernel metrics recorded".into());
        }
        for k in &self.kernels {
            let tag = format!("kernel {} m={}", k.name, k.m);
            if k.calls == 0 {
                problems.push(format!("{tag}: zero calls"));
            }
            positive(
                &mut problems,
                &format!("{tag}: measured_secs"),
                k.measured_secs,
            );
            positive(
                &mut problems,
                &format!("{tag}: measured_gbps"),
                k.measured_gbps,
            );
            positive(
                &mut problems,
                &format!("{tag}: measured_gflops"),
                k.measured_gflops,
            );
            positive(&mut problems, &format!("{tag}: model_secs"), k.model_secs);
            positive(&mut problems, &format!("{tag}: model_gbps"), k.model_gbps);
            if !k.residual.is_finite() {
                problems.push(format!("{tag}: residual is not finite"));
            }
        }
        if let Some(t) = &self.trace_overhead {
            positive(
                &mut problems,
                "trace_overhead.baseline_rhs_per_sec",
                t.baseline_rhs_per_sec,
            );
            positive(
                &mut problems,
                "trace_overhead.traced_rhs_per_sec",
                t.traced_rhs_per_sec,
            );
            if !t.overhead_frac.is_finite() {
                problems.push("trace_overhead.overhead_frac not finite".into());
            }
        }
        for g in &self.drift_gauges {
            if g.name.is_empty() {
                problems.push("drift gauge with empty name".into());
            }
            if !g.value.is_finite() {
                problems.push(format!("drift gauge `{}` is not finite", g.name));
            }
        }
        for c in &self.span_consistency {
            if !c.within(SPAN_CONSISTENCY_TOL) {
                problems.push(format!(
                    "span `{}` decomposes to {:.1}% of its wall-clock \
                     (children {:.3e}s vs parent {:.3e}s; tolerance {}%)",
                    c.parent,
                    100.0 * c.ratio,
                    c.children_secs,
                    c.parent_secs,
                    100.0 * SPAN_CONSISTENCY_TOL
                ));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("gspmv/calls".into(), 12);
        BenchReport {
            schema_version: SCHEMA_VERSION,
            experiment: "quick".into(),
            created_unix_ms: 1_700_000_000_123,
            machine: MachineInfo {
                os: "linux".into(),
                arch: "x86_64".into(),
                threads: 4,
                isa: "avx2".into(),
                kernel_backend: "simd".into(),
                stream_bandwidth_bps: 13.7e9,
                kernel_flops: 19.6e9,
                model_k: 3.0,
            },
            kernels: vec![KernelMetric {
                name: "gspmv".into(),
                m: 8,
                calls: 5,
                measured_secs: 1.1e-3,
                matrix_bytes: 2.0e6,
                vector_bytes: 1.2e6,
                flops: 4.0e6,
                measured_gbps: 2.9,
                measured_gflops: 3.6,
                model_secs: 1.0e-3,
                model_gbps: 3.2,
                residual: 0.1,
            }],
            span_consistency: vec![SpanConsistency {
                parent: "solver/block_cg".into(),
                parent_secs: 1.0,
                children_secs: 0.98,
                ratio: 0.98,
            }],
            trace_overhead: Some(TraceOverhead {
                baseline_rhs_per_sec: 1200.0,
                traced_rhs_per_sec: 1190.0,
                overhead_frac: 1.0 - 1190.0 / 1200.0,
                events_recorded: 54_321,
                events_sampled_out: 12,
            }),
            drift_gauges: vec![DriftGauge {
                name: "drift/m_optimal/measured".into(),
                value: 8.0,
            }],
            snapshot,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let r = sample();
        let text = r.to_json_string();
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn valid_report_passes() {
        assert!(sample().validate().is_empty(), "{:?}", sample().validate());
    }

    #[test]
    fn nan_and_zero_rates_fail_validation() {
        let mut r = sample();
        r.kernels[0].measured_gbps = f64::NAN;
        assert!(!r.validate().is_empty());
        let mut r = sample();
        r.kernels[0].measured_gflops = 0.0;
        assert!(!r.validate().is_empty());
        let mut r = sample();
        r.kernels.clear();
        assert!(!r.validate().is_empty());
    }

    #[test]
    fn bad_span_decomposition_fails_validation() {
        let mut r = sample();
        r.span_consistency[0].ratio = 0.8;
        let problems = r.validate();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("solver/block_cg"));
    }

    #[test]
    fn absent_trace_overhead_round_trips_and_validates() {
        let mut r = sample();
        r.trace_overhead = None;
        r.drift_gauges.clear();
        assert!(r.validate().is_empty(), "{:?}", r.validate());
        let back = BenchReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn bad_trace_overhead_and_drift_fail_validation() {
        let mut r = sample();
        r.trace_overhead.as_mut().unwrap().traced_rhs_per_sec = 0.0;
        assert!(!r.validate().is_empty());
        let mut r = sample();
        r.drift_gauges[0].value = f64::INFINITY;
        assert!(!r.validate().is_empty());
    }

    #[test]
    fn wrong_schema_version_fails() {
        let mut r = sample();
        r.schema_version = 99;
        assert!(!r.validate().is_empty());
    }

    #[test]
    fn nan_in_serialized_report_fails_parse_or_validate() {
        // A NaN serializes as JSON null; from_json then rejects the
        // field — the failure is visible either way.
        let mut r = sample();
        r.kernels[0].residual = f64::NAN;
        let text = r.to_json_string();
        assert!(BenchReport::from_json_str(&text).is_err());
    }
}
