//! Derived metrics: achieved rates and model residuals.
//!
//! The registry stores raw monotone quantities (bytes, flops, span
//! nanoseconds). This module turns a [`Snapshot`] diff into the
//! numbers the paper argues with — achieved GB/s and GF/s per kernel
//! invocation — and measures them against a model prediction (Eq. 8
//! for GSPMV) as a relative residual. It also checks the span tree for
//! self-consistency: the children of a span must sum to its wall-clock
//! total, or the taxonomy is lying about where time went.

use crate::snapshot::Snapshot;

/// Achieved gigabytes per second (0 when the denominator is 0 — a
/// never-entered span — so validation catches it as a zero, not a NaN).
pub fn gbps(bytes: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        bytes / secs / 1e9
    }
}

/// Achieved gigaflops per second.
pub fn gflops(flops: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        flops / secs / 1e9
    }
}

/// Relative residual of a measurement against a model prediction:
/// `(measured − model) / model`. Positive means slower than modeled.
pub fn relative_residual(measured: f64, model: f64) -> f64 {
    if model == 0.0 {
        f64::NAN
    } else {
        (measured - model) / model
    }
}

/// One parent span checked against the sum of its direct children.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanConsistency {
    /// Parent span name.
    pub parent: String,
    /// Parent wall-clock seconds.
    pub parent_secs: f64,
    /// Sum of the direct children's seconds.
    pub children_secs: f64,
    /// `children_secs / parent_secs` (1.0 for an exactly-decomposed
    /// span; NaN-free: 0 when the parent never ran).
    pub ratio: f64,
}

impl SpanConsistency {
    /// Whether the decomposition closes within `tol` (e.g. 0.05 for the
    /// 5% acceptance bound). Children may undershoot (untimed glue) or
    /// overshoot (clock granularity); both directions count.
    pub fn within(&self, tol: f64) -> bool {
        (self.ratio - 1.0).abs() <= tol
    }
}

/// Checks every span that has direct children (`name/…` one level
/// deeper) against the sum of those children. Spans without children
/// are leaves and produce no entry.
pub fn span_consistency(snapshot: &Snapshot) -> Vec<SpanConsistency> {
    let mut out = Vec::new();
    for (parent, stat) in &snapshot.spans {
        let prefix = format!("{parent}/");
        let children_secs: f64 = snapshot
            .spans
            .iter()
            .filter(|(name, _)| {
                name.starts_with(&prefix) && !name[prefix.len()..].contains('/')
            })
            .map(|(_, s)| s.secs())
            .sum();
        if children_secs == 0.0 {
            continue; // leaf (or children never entered)
        }
        let parent_secs = stat.secs();
        let ratio =
            if parent_secs > 0.0 { children_secs / parent_secs } else { 0.0 };
        out.push(SpanConsistency {
            parent: parent.clone(),
            parent_secs,
            children_secs,
            ratio,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SpanStat;

    #[test]
    fn rates_are_finite_and_zero_safe() {
        assert_eq!(gbps(2e9, 1.0), 2.0);
        assert_eq!(gflops(18e9, 2.0), 9.0);
        assert_eq!(gbps(1e9, 0.0), 0.0);
        assert_eq!(gflops(1e9, 0.0), 0.0);
    }

    #[test]
    fn residual_signs() {
        assert!((relative_residual(1.2, 1.0) - 0.2).abs() < 1e-12);
        assert!((relative_residual(0.8, 1.0) + 0.2).abs() < 1e-12);
        assert!(relative_residual(1.0, 0.0).is_nan());
    }

    #[test]
    fn consistency_finds_direct_children_only() {
        let mut s = Snapshot::default();
        let span = |ns| SpanStat { count: 1, total_ns: ns };
        s.spans.insert("solver/block_cg".into(), span(100_000));
        s.spans.insert("solver/block_cg/init".into(), span(20_000));
        s.spans.insert("solver/block_cg/iter".into(), span(78_000));
        // A grandchild must not be double-counted into the root.
        s.spans.insert("solver/block_cg/iter/gram".into(), span(50_000));
        let checks = span_consistency(&s);
        let root = checks.iter().find(|c| c.parent == "solver/block_cg").unwrap();
        assert!((root.children_secs - 98e-6).abs() < 1e-12);
        assert!((root.ratio - 0.98).abs() < 1e-9);
        assert!(root.within(0.05));
        assert!(!root.within(0.01));
        // `iter` is itself a parent of `iter/gram`.
        let iter =
            checks.iter().find(|c| c.parent == "solver/block_cg/iter").unwrap();
        assert!((iter.children_secs - 50e-6).abs() < 1e-12);
    }

    #[test]
    fn leaves_produce_no_entry() {
        let mut s = Snapshot::default();
        s.spans.insert("kernel/gspmv".into(), SpanStat { count: 1, total_ns: 10 });
        assert!(span_consistency(&s).is_empty());
    }
}
