//! Integration tests for the telemetry crate: snapshot/diff arithmetic
//! on the global registry, and lossless concurrent counting from the
//! rayon worker pool (the same pool the GSPMV kernels record from).

use mrhs_telemetry as telemetry;

/// Bracketing an experiment with two snapshots isolates exactly its own
/// increments, and the diffs of adjacent brackets add back up to the
/// enclosing diff.
#[test]
fn snapshot_diff_brackets_an_experiment() {
    telemetry::set_enabled(true);
    // Unique names: integration tests share the process-global registry
    // across #[test] threads.
    let base = telemetry::snapshot();

    telemetry::counter_add("itest/bracket/flops", 100);
    let mid = telemetry::snapshot();
    telemetry::counter_add("itest/bracket/flops", 250);
    telemetry::counter_add("itest/bracket/bytes", 4096);
    let end = telemetry::snapshot();

    let first = mid.diff(&base);
    let second = end.diff(&mid);
    let whole = end.diff(&base);

    assert_eq!(first.counter("itest/bracket/flops"), 100);
    assert_eq!(second.counter("itest/bracket/flops"), 250);
    assert_eq!(second.counter("itest/bracket/bytes"), 4096);
    assert_eq!(
        whole.counter("itest/bracket/flops"),
        first.counter("itest/bracket/flops")
            + second.counter("itest/bracket/flops")
    );
    assert_eq!(whole.counter("itest/bracket/bytes"), 4096);
}

/// Span stats bracket the same way counters do.
#[test]
fn snapshot_diff_isolates_span_counts() {
    telemetry::set_enabled(true);
    let base = telemetry::snapshot();
    for _ in 0..3 {
        let _g = telemetry::span("itest/span/inner");
    }
    let d = telemetry::snapshot().diff(&base);
    assert_eq!(d.spans["itest/span/inner"].count, 3);
}

/// Concurrent increments from the rayon pool — the exact pattern the
/// parallel GSPMV paths use — must lose no updates.
#[test]
fn rayon_pool_increments_lose_nothing() {
    telemetry::set_enabled(true);
    let base = telemetry::snapshot();

    const TASKS: u64 = 64;
    const PER_TASK: u64 = 1_000;
    rayon::scope(|s| {
        for _ in 0..TASKS {
            s.spawn(|_| {
                for _ in 0..PER_TASK {
                    telemetry::counter_add("itest/rayon/contended", 1);
                }
            });
        }
    });

    let d = telemetry::snapshot().diff(&base);
    assert_eq!(d.counter("itest/rayon/contended"), TASKS * PER_TASK);
}
