//! Concurrent writers vs. snapshot/diff readers on the global registry.
//!
//! The service scrapes `/metrics` (which snapshots the registry) while
//! worker and rayon threads are mid-increment, so a snapshot taken at
//! any instant must be internally sane — monotone against earlier
//! snapshots, never torn — and the totals after all writers join must
//! be exactly deterministic regardless of interleaving. The writer
//! count honors `RAYON_NUM_THREADS` so CI exercises the same
//! parallelism the kernels use.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use mrhs_telemetry as telemetry;

fn writer_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

const PER_THREAD_OPS: u64 = 2_000;

#[test]
fn racing_writers_never_tear_and_totals_pin_after_join() {
    telemetry::set_enabled(true);
    let threads = writer_threads();
    let before = telemetry::snapshot();
    let stop = Arc::new(AtomicBool::new(false));

    // Writers hammer one shared counter/span/histogram/gauge family
    // plus one private counter each.
    let writers: Vec<_> = (0..threads)
        .map(|t| {
            thread::spawn(move || {
                for k in 0..PER_THREAD_OPS {
                    telemetry::counter_add("race/shared_counter", 1);
                    telemetry::counter_add(&format!("race/thread{t}"), 2);
                    telemetry::record_span_secs("race/span", 1e-9);
                    telemetry::histogram_record_ns("race/hist", k % 1024);
                    telemetry::gauge_set("race/gauge", k as f64);
                }
            })
        })
        .collect();

    // A racing reader: every mid-flight snapshot must be monotone in
    // every key against the previous one (writers only ever add), and
    // diffs against the baseline must never go negative (saturation
    // would mask tearing, so check monotonicity on the raw values).
    let reader = {
        let stop = stop.clone();
        thread::spawn(move || {
            let mut prev = telemetry::snapshot();
            let mut observed = 0u64;
            // Check `stop` at the bottom so at least one snapshot races
            // (or, worst case, lands just after the writers finish) even
            // when tiny write runs complete before this thread is first
            // scheduled.
            loop {
                let cur = telemetry::snapshot();
                for (k, v) in &prev.counters {
                    assert!(
                        cur.counters.get(k).copied().unwrap_or(0) >= *v,
                        "counter {k} went backwards"
                    );
                }
                for (k, s) in &prev.spans {
                    let c = cur.spans.get(k).copied().unwrap_or_default();
                    assert!(c.count >= s.count, "span {k} count went backwards");
                    assert!(
                        c.total_ns >= s.total_ns,
                        "span {k} total went backwards"
                    );
                }
                for (k, h) in &prev.histograms {
                    let c = cur.histograms.get(k).cloned().unwrap_or_default();
                    assert!(c.count >= h.count, "hist {k} went backwards");
                    assert!(c.sum >= h.sum, "hist {k} sum went backwards");
                }
                if let Some(g) = cur.gauges.get("race/gauge") {
                    assert!(
                        g.is_finite() && *g < PER_THREAD_OPS as f64,
                        "gauge must always hold some writer's exact value"
                    );
                }
                observed += 1;
                prev = cur;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            observed
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed = reader.join().unwrap();
    assert!(observed > 0, "reader must have raced at least once");

    // After join the totals are exact: no lost increments, no
    // double-counting, independent of scheduling.
    let d = telemetry::snapshot().diff(&before);
    let n = threads as u64;
    assert_eq!(d.counter("race/shared_counter"), n * PER_THREAD_OPS);
    for t in 0..threads {
        assert_eq!(d.counter(&format!("race/thread{t}")), 2 * PER_THREAD_OPS);
    }
    let span = d.spans.get("race/span").copied().unwrap_or_default();
    assert_eq!(span.count, n * PER_THREAD_OPS);
    let hist = d.histograms.get("race/hist").cloned().unwrap_or_default();
    assert_eq!(hist.count, n * PER_THREAD_OPS);
    let per_thread_sum: u64 = (0..PER_THREAD_OPS).map(|k| k % 1024).sum();
    assert_eq!(hist.sum, n * per_thread_sum);
    // The gauge holds the last write of whichever thread finished last;
    // every thread's final write is the same value.
    assert_eq!(d.gauges["race/gauge"], (PER_THREAD_OPS - 1) as f64);
}
