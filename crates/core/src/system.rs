//! Abstractions the MRHS algorithm is generic over.

use mrhs_sparse::{BcrsMatrix, SymmetricBcrs};

/// A dynamical system governed by `R(r)·dr/dt = −f_B` with a
/// configuration-dependent SPD resistance matrix — the structure the
/// MRHS algorithm exploits. `mrhs-stokes` implements this for Stokesian
/// dynamics; tests use small synthetic systems.
pub trait ResistanceSystem {
    /// Scalar dimension of the state and of the resistance matrix
    /// (`3 × n_particles` for SD).
    fn dim(&self) -> usize;

    /// Assembles the resistance matrix at the current configuration
    /// (paper Alg. 1 step 1 / Alg. 2 steps 1 and 8).
    fn assemble(&self) -> BcrsMatrix;

    /// Advances the configuration: `r ← r + dt·u`.
    fn advance(&mut self, u: &[f64], dt: f64);

    /// Time step length `Δt`.
    fn dt(&self) -> f64;

    /// Snapshot of the configuration, used by the explicit midpoint
    /// scheme to return from the half step.
    fn save_state(&self) -> Vec<f64>;

    /// Restores a snapshot taken by [`Self::save_state`].
    fn restore_state(&mut self, state: &[f64]);

    /// Assembles the resistance in symmetric (diagonal + strictly
    /// upper) storage, halving the matrix bytes streamed per solver
    /// iteration. Returns `None` when the matrix is not symmetric
    /// within `tol` — the driver then falls back to full storage.
    ///
    /// The default converts the full assembly; implementations with a
    /// cheaper direct symmetric assembly may override.
    fn assemble_symmetric(&self, tol: f64) -> Option<SymmetricBcrs> {
        SymmetricBcrs::from_full(&self.assemble(), tol)
    }

    /// Adds the deterministic inter-particle/external forces `f_P` at
    /// the current configuration into `out` (paper §II-A: bonded forces
    /// for chain molecules, external fields, …). The governing equation
    /// becomes `R·dr/dt = −(f_B + f_P)`. Default: no external forces
    /// (`f_P = 0`, as in the paper's experiments).
    fn add_external_forces(&self, out: &mut [f64]) {
        let _ = out;
    }
}

/// A stream of standard normal variates for the Brownian noise vectors
/// `z_k`. Implementations must be reproducible under seeding so that
/// MRHS and baseline runs can consume identical noise.
pub trait NoiseSource {
    /// Fills `out` with independent `N(0, 1)` samples.
    fn fill_standard_normal(&mut self, out: &mut [f64]);
}

/// A deterministic xorshift-based Gaussian source (Box–Muller). This is
/// the reference [`NoiseSource`] used by tests and examples; the
/// Stokesian application may use any source.
#[derive(Clone, Debug)]
pub struct XorShiftNoise {
    state: u64,
    cached: Option<f64>,
}

impl XorShiftNoise {
    /// Creates a source from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        XorShiftNoise { state: seed | 1, cached: None }
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn next_uniform(&mut self) -> f64 {
        // in (0, 1]
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

impl NoiseSource for XorShiftNoise {
    fn fill_standard_normal(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            if let Some(c) = self.cached.take() {
                *v = c;
            } else {
                let u1 = self.next_uniform();
                let u2 = self.next_uniform();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                *v = r * theta.cos();
                self.cached = Some(r * theta.sin());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_reproducible_under_seed() {
        let mut a = XorShiftNoise::new(7);
        let mut b = XorShiftNoise::new(7);
        let mut va = [0.0; 16];
        let mut vb = [0.0; 16];
        a.fill_standard_normal(&mut va);
        b.fill_standard_normal(&mut vb);
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShiftNoise::new(7);
        let mut b = XorShiftNoise::new(8);
        let mut va = [0.0; 8];
        let mut vb = [0.0; 8];
        a.fill_standard_normal(&mut va);
        b.fill_standard_normal(&mut vb);
        assert_ne!(va, vb);
    }

    #[test]
    fn noise_has_roughly_standard_moments() {
        let mut src = XorShiftNoise::new(42);
        let mut v = vec![0.0; 100_000];
        src.fill_standard_normal(&mut v);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var =
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn odd_lengths_use_cached_sample() {
        let mut src = XorShiftNoise::new(11);
        let mut a = [0.0; 3];
        let mut b = [0.0; 3];
        src.fill_standard_normal(&mut a);
        src.fill_standard_normal(&mut b);
        // The cache must not duplicate values across calls.
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }
}
