//! The MRHS algorithm — the paper's primary contribution.
//!
//! A Stokesian-dynamics (or similar) simulation solves, at every time
//! step, one linear system `R(r_k)·u_k = −f_B(k)` whose right-hand side
//! is fresh random noise — so no initial guess seems available. The MRHS
//! algorithm (paper Alg. 2) manufactures guesses anyway: at the head of
//! every chunk of `m` steps it solves ONE auxiliary system
//!
//! ```text
//!     R_0 · [u_0, u'_1, …, u'_{m−1}] = S(R_0) · [z_0, z_1, …, z_{m−1}]
//! ```
//!
//! with the *future* noise vectors as extra right-hand sides, using a
//! block iterative method whose per-iteration cost is one GSPMV — nearly
//! the cost of a single SPMV. Because `R(r)` drifts only as √t, the
//! columns `u'_k` are good initial guesses for the later steps, cutting
//! their iteration counts by 30–40%.
//!
//! The crate is generic over [`ResistanceSystem`] (implemented by
//! `mrhs-stokes` for the real application and by simple synthetic
//! systems in tests) and over [`NoiseSource`].
//!
//! * [`algorithm`] — the chunked MRHS driver and the original
//!   (Algorithm 1) baseline, both instrumented with the paper's timing
//!   breakdown categories.
//! * [`timing`] — the breakdown rows of Tables VI/VII.
//! * [`tuning`] — selection of the optimal number of right-hand sides
//!   from a measured GSPMV cost curve (paper Eq. 9).

pub mod algorithm;
pub mod system;
pub mod timing;
pub mod tuning;

pub use algorithm::{
    run_mrhs_chunk, run_original_step, ChunkReport, MrhsConfig, StepStats,
};
pub use system::{NoiseSource, ResistanceSystem};
pub use timing::{StepTimings, TimingBreakdown};
pub use tuning::optimal_m_from_costs;
