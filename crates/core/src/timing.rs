//! Per-step timing breakdowns — the rows of the paper's Tables VI/VII.

use std::time::Duration;

/// Wall-clock cost of one time step, split into the categories the
/// paper reports. Chunk-head costs (`cheb_vectors`, `calc_guesses`) are
/// attributed to the step they run in and amortized by
/// [`TimingBreakdown::average_per_step`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// Matrix assembly (`Construct R_k`).
    pub assemble: Duration,
    /// Chebyshev with the block of `m` noise vectors (Alg. 2 step 2);
    /// zero for all but the first step of a chunk and for the baseline.
    pub cheb_vectors: Duration,
    /// Block solve of the auxiliary system (Alg. 2 step 3); likewise
    /// chunk-head only.
    pub calc_guesses: Duration,
    /// Chebyshev with a single vector (Alg. 2 step 9 / Alg. 1 step 2).
    pub cheb_single: Duration,
    /// First velocity solve of the step (Alg. 2 step 10 / Alg. 1 step 3).
    pub first_solve: Duration,
    /// Midpoint velocity solve (Alg. 2 step 12 / Alg. 1 step 5).
    pub second_solve: Duration,
}

impl StepTimings {
    /// Total wall-clock of the step.
    pub fn total(&self) -> Duration {
        self.assemble
            + self.cheb_vectors
            + self.calc_guesses
            + self.cheb_single
            + self.first_solve
            + self.second_solve
    }

    /// Adds another step's timings into this one (used for aggregation).
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.assemble += other.assemble;
        self.cheb_vectors += other.cheb_vectors;
        self.calc_guesses += other.calc_guesses;
        self.cheb_single += other.cheb_single;
        self.first_solve += other.first_solve;
        self.second_solve += other.second_solve;
    }

    /// Rebuilds an (aggregated) `StepTimings` from the `mrhs/…`
    /// telemetry spans of a snapshot — typically the diff bracketing a
    /// run. The driver times every phase through
    /// `mrhs_telemetry::time_span` with these exact names, so with
    /// telemetry enabled this view and the per-step bookkeeping are two
    /// projections of the same clock reads.
    pub fn from_span_totals(snapshot: &mrhs_telemetry::Snapshot) -> StepTimings {
        let d = |name: &str| Duration::from_secs_f64(snapshot.span_secs(name));
        StepTimings {
            assemble: d("mrhs/assemble"),
            cheb_vectors: d("mrhs/cheb_vectors"),
            calc_guesses: d("mrhs/calc_guesses"),
            cheb_single: d("mrhs/cheb_single"),
            first_solve: d("mrhs/first_solve"),
            second_solve: d("mrhs/second_solve"),
        }
    }
}

/// Aggregated timings over a run, in seconds, in the layout of the
/// paper's Tables VI/VII.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingBreakdown {
    /// Steps aggregated.
    pub steps: usize,
    /// Total `Cheb vectors` seconds (chunk heads).
    pub cheb_vectors: f64,
    /// Total `Calc guesses` seconds (chunk heads).
    pub calc_guesses: f64,
    /// Total single-vector Chebyshev seconds.
    pub cheb_single: f64,
    /// Total first-solve seconds.
    pub first_solve: f64,
    /// Total second-solve seconds.
    pub second_solve: f64,
    /// Total assembly seconds.
    pub assemble: f64,
}

impl TimingBreakdown {
    /// Folds a step into the aggregate.
    pub fn add_step(&mut self, t: &StepTimings) {
        self.steps += 1;
        self.cheb_vectors += t.cheb_vectors.as_secs_f64();
        self.calc_guesses += t.calc_guesses.as_secs_f64();
        self.cheb_single += t.cheb_single.as_secs_f64();
        self.first_solve += t.first_solve.as_secs_f64();
        self.second_solve += t.second_solve.as_secs_f64();
        self.assemble += t.assemble.as_secs_f64();
    }

    /// Average seconds per time step, all categories included — the
    /// "Average" row of Tables VI/VII.
    pub fn average_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            (self.cheb_vectors
                + self.calc_guesses
                + self.cheb_single
                + self.first_solve
                + self.second_solve
                + self.assemble)
                / self.steps as f64
        }
    }

    /// Per-step averages of the individual categories, in the order
    /// `(cheb_vectors, calc_guesses, cheb_single, 1st solve, 2nd solve)`.
    pub fn category_averages(&self) -> (f64, f64, f64, f64, f64) {
        let n = self.steps.max(1) as f64;
        (
            self.cheb_vectors / n,
            self.calc_guesses / n,
            self.cheb_single / n,
            self.first_solve / n,
            self.second_solve / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_total_sums_categories() {
        let t = StepTimings {
            assemble: Duration::from_millis(1),
            cheb_vectors: Duration::from_millis(2),
            calc_guesses: Duration::from_millis(3),
            cheb_single: Duration::from_millis(4),
            first_solve: Duration::from_millis(5),
            second_solve: Duration::from_millis(6),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
    }

    #[test]
    fn breakdown_averages_over_steps() {
        let mut agg = TimingBreakdown::default();
        let t = StepTimings {
            first_solve: Duration::from_millis(10),
            ..Default::default()
        };
        agg.add_step(&t);
        agg.add_step(&t);
        assert_eq!(agg.steps, 2);
        assert!((agg.average_per_step() - 0.010).abs() < 1e-12);
        let (cv, cg, cs, s1, s2) = agg.category_averages();
        assert_eq!((cv, cg, cs, s2), (0.0, 0.0, 0.0, 0.0));
        assert!((s1 - 0.010).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let agg = TimingBreakdown::default();
        assert_eq!(agg.average_per_step(), 0.0);
    }

    #[test]
    fn from_span_totals_maps_every_category() {
        use mrhs_telemetry::{Snapshot, SpanStat};
        let mut s = Snapshot::default();
        let names = [
            ("mrhs/assemble", 1u64),
            ("mrhs/cheb_vectors", 2),
            ("mrhs/calc_guesses", 3),
            ("mrhs/cheb_single", 4),
            ("mrhs/first_solve", 5),
            ("mrhs/second_solve", 6),
        ];
        for (name, ms) in names {
            s.spans.insert(
                name.into(),
                SpanStat { count: 1, total_ns: ms * 1_000_000 },
            );
        }
        let t = StepTimings::from_span_totals(&s);
        assert_eq!(t.assemble, Duration::from_millis(1));
        assert_eq!(t.cheb_vectors, Duration::from_millis(2));
        assert_eq!(t.calc_guesses, Duration::from_millis(3));
        assert_eq!(t.cheb_single, Duration::from_millis(4));
        assert_eq!(t.first_solve, Duration::from_millis(5));
        assert_eq!(t.second_solve, Duration::from_millis(6));
        assert_eq!(t.total(), Duration::from_millis(21));
        // Missing spans read as zero (telemetry disabled, or a phase
        // that never ran).
        let empty = StepTimings::from_span_totals(&Snapshot::default());
        assert_eq!(empty.total(), Duration::ZERO);
    }

    #[test]
    fn accumulate_adds_all_fields() {
        let t = StepTimings {
            assemble: Duration::from_millis(1),
            cheb_vectors: Duration::from_millis(1),
            calc_guesses: Duration::from_millis(1),
            cheb_single: Duration::from_millis(1),
            first_solve: Duration::from_millis(1),
            second_solve: Duration::from_millis(1),
        };
        let mut sum = StepTimings::default();
        sum.accumulate(&t);
        sum.accumulate(&t);
        assert_eq!(sum.total(), Duration::from_millis(12));
    }
}
