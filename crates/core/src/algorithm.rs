//! The MRHS driver (paper Algorithm 2) and the original baseline
//! (Algorithm 1), both instrumented with the paper's timing categories
//! and iteration counts.

use crate::system::{NoiseSource, ResistanceSystem};
use crate::timing::StepTimings;
use mrhs_solvers::{
    block_cg, cg, spectral_bounds, ChebyshevSqrt, LinearOperator, SolveConfig,
};
use mrhs_sparse::{BcrsMatrix, MultiVec, SymmetricBcrs};
use mrhs_telemetry::time_span;

/// Parameters of both drivers.
#[derive(Clone, Debug)]
pub struct MrhsConfig {
    /// Number of right-hand sides per chunk (the paper's `m`; 16 in the
    /// headline experiments).
    pub m: usize,
    /// Maximum Chebyshev order `C_max` (30 in the paper).
    pub cheb_order: usize,
    /// Convergence controls for all solves.
    pub solve: SolveConfig,
    /// Relative tolerance of the auxiliary block solve. The auxiliary
    /// solutions are only *initial guesses*, and for every step after
    /// the first their error is dominated by the √t matrix drift
    /// (Fig. 5: ~3·10⁻³ after one step) — so the block solve stops one
    /// decade below that floor (10⁻⁴ default) instead of running to
    /// full tolerance, and every step (including the chunk head)
    /// refines its own solution to `solve.tol` from its column.
    pub guess_tol: f64,
    /// Lanczos steps for the spectral-bound estimate at chunk heads.
    pub lanczos_steps: usize,
    /// Multiplicative widening of the spectral interval so one
    /// Chebyshev polynomial stays valid while `R` drifts over a chunk.
    pub bounds_margin: f64,
    /// Record `‖u_k − u'_k‖/‖u_k‖` per step (Fig. 5). Costs one vector
    /// copy per solve.
    pub record_guess_errors: bool,
    /// Run every solve on symmetric (diagonal + strictly-upper) storage,
    /// halving the matrix bytes streamed per iteration. The assembled
    /// matrix is converted after the spectral-bound estimate; if it is
    /// not symmetric within [`MrhsConfig::symmetry_tol`] the step falls
    /// back to full storage.
    pub symmetric_storage: bool,
    /// Relative symmetry tolerance for the conversion above.
    pub symmetry_tol: f64,
}

impl Default for MrhsConfig {
    fn default() -> Self {
        MrhsConfig {
            m: 16,
            cheb_order: 30,
            solve: SolveConfig::default(),
            guess_tol: 1e-4,
            lanczos_steps: 20,
            bounds_margin: 1.15,
            record_guess_errors: true,
            symmetric_storage: false,
            symmetry_tol: 1e-10,
        }
    }
}

/// The operator a step's solves run against: full BCRS, or symmetric
/// storage when [`MrhsConfig::symmetric_storage`] is set and the
/// assembled matrix passed the symmetry check.
enum StepOperator {
    Full(BcrsMatrix),
    Symmetric(SymmetricBcrs),
}

impl StepOperator {
    fn build(a: BcrsMatrix, cfg: &MrhsConfig) -> Self {
        if cfg.symmetric_storage {
            if let Some(s) = SymmetricBcrs::from_full(&a, cfg.symmetry_tol) {
                return StepOperator::Symmetric(s);
            }
        }
        StepOperator::Full(a)
    }

    fn empty() -> Self {
        StepOperator::Full(BcrsMatrix::zero(0))
    }
}

impl LinearOperator for StepOperator {
    fn dim(&self) -> usize {
        match self {
            StepOperator::Full(a) => a.dim(),
            StepOperator::Symmetric(s) => s.dim(),
        }
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        match self {
            StepOperator::Full(a) => a.apply(x, y),
            StepOperator::Symmetric(s) => s.apply(x, y),
        }
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        match self {
            StepOperator::Full(a) => a.apply_multi(x, y),
            StepOperator::Symmetric(s) => s.apply_multi(x, y),
        }
    }
}

/// Per-step observations.
#[derive(Clone, Debug)]
pub struct StepStats {
    /// CG iterations of the step's first solve, warm-started from the
    /// step's auxiliary-system column.
    pub first_solve_iterations: usize,
    /// CG iterations of the midpoint solve.
    pub second_solve_iterations: usize,
    /// `‖u_k − u'_k‖/‖u_k‖` where `u'_k` was the initial guess used for
    /// the first solve; `None` when not recorded or no guess was used.
    pub guess_relative_error: Option<f64>,
    /// Wall-clock breakdown.
    pub timings: StepTimings,
}

/// Everything observed while running one MRHS chunk of `m` steps.
#[derive(Clone, Debug)]
pub struct ChunkReport {
    /// Right-hand sides in the chunk.
    pub m: usize,
    /// Block-CG iterations of the auxiliary solve.
    pub block_iterations: usize,
    /// Per-step observations, length `m`.
    pub steps: Vec<StepStats>,
}

impl ChunkReport {
    /// Mean wall-clock seconds per step, amortizing the chunk-head work
    /// — the quantity `T_mrhs` of the paper's Eq. 9.
    pub fn average_step_seconds(&self) -> f64 {
        let total: f64 =
            self.steps.iter().map(|s| s.timings.total().as_secs_f64()).sum();
        total / self.steps.len().max(1) as f64
    }
}

/// Runs one chunk of `cfg.m` time steps with the MRHS algorithm
/// (paper Alg. 2), advancing `system` by `cfg.m` steps.
pub fn run_mrhs_chunk<S: ResistanceSystem, N: NoiseSource>(
    system: &mut S,
    noise: &mut N,
    cfg: &MrhsConfig,
) -> ChunkReport {
    assert!(cfg.m >= 1);
    let n = system.dim();
    let m = cfg.m;

    // -- Alg. 2 step 1: construct R_0 ---------------------------------
    // Every phase below is timed through `time_span`, which records the
    // duration under the matching `mrhs/…` telemetry span *and* returns
    // it for the `StepTimings` bookkeeping — the two views are fed from
    // the same clock reads and cannot drift apart.
    let mut timings0 = StepTimings::default();
    let (r0, dt) = time_span("mrhs/assemble", || system.assemble());
    timings0.assemble += dt;

    // Spectral interval for the whole chunk (Gershgorin needs the full
    // storage, so bounds are estimated before any conversion).
    let g = (r0.gershgorin_lower_bound(), r0.gershgorin_upper_bound());
    let b = spectral_bounds(&r0, cfg.lanczos_steps, Some(g));
    let cheb = ChebyshevSqrt::new(
        b.lo / cfg.bounds_margin,
        b.hi * cfg.bounds_margin,
        cfg.cheb_order,
    );

    // Optionally drop to symmetric storage for every apply/solve below.
    let (mut op0, dt) = time_span("mrhs/assemble", || StepOperator::build(r0, cfg));
    timings0.assemble += dt;

    // -- Alg. 2 step 2: F_B = S(R_0)·Z with all m noise vectors --------
    let mut z = MultiVec::zeros(n, m);
    noise.fill_standard_normal(z.as_mut_slice());
    let (mut rhs, dt) = time_span("mrhs/cheb_vectors", || {
        let mut rhs = MultiVec::zeros(n, m);
        cheb.apply_multi(&op0, &z, &mut rhs);
        rhs.scale(-1.0); // solve R·u = −(f_B + f_P)
        rhs
    });
    timings0.cheb_vectors += dt;
    let mut f_ext = vec![0.0; n];
    system.add_external_forces(&mut f_ext);
    for (row, fe) in (0..n).zip(&f_ext) {
        for v in rhs.row_mut(row) {
            *v -= fe;
        }
    }

    // -- Alg. 2 step 3: block solve R_0·U = −F_B -----------------------
    // Solved only to `guess_tol`: the columns are initial guesses whose
    // quality is bounded by the matrix drift anyway; each step below
    // refines its own solution to full tolerance.
    let mut u = MultiVec::zeros(n, m);
    let guess_cfg = SolveConfig { tol: cfg.guess_tol, ..cfg.solve };
    let (block, dt) =
        time_span("mrhs/calc_guesses", || block_cg(&op0, &rhs, &mut u, &guess_cfg));
    timings0.calc_guesses += dt;

    let mut steps = Vec::with_capacity(m);

    // Reused per-step column buffers (no per-iteration allocation),
    // filled through the same `gather_columns_into` helper the solve
    // service's batcher uses; a width-1 `MultiVec`'s flat buffer *is*
    // the column, so the scalar solvers consume it directly.
    let mut zk = MultiVec::zeros(n, 1);
    let mut uk = MultiVec::zeros(n, 1);

    // -- Alg. 2 steps 4–14: every step warm-starts from its column ----
    for k in 0..m {
        let mut timings = if k == 0 {
            std::mem::take(&mut timings0)
        } else {
            StepTimings::default()
        };

        // R_k (the chunk head reuses R_0, already assembled).
        let rk = if k == 0 {
            std::mem::replace(&mut op0, StepOperator::empty())
        } else {
            let (rk, dt) = time_span("mrhs/assemble", || {
                StepOperator::build(system.assemble(), cfg)
            });
            timings.assemble += dt;
            rk
        };

        // f_B(k) = S(R_k)·z_k; the head step's is column 0 of the block.
        let fbk = if k == 0 {
            rhs.gather_columns(&[0]).into_flat()
        } else {
            z.gather_columns_into(&[k], &mut zk);
            let (fbk, dt) = time_span("mrhs/cheb_single", || {
                let mut fbk = vec![0.0; n];
                cheb.apply(&rk, zk.as_slice(), &mut fbk);
                let mut ext = vec![0.0; n];
                system.add_external_forces(&mut ext);
                for (v, e) in fbk.iter_mut().zip(&ext) {
                    *v = -*v - e;
                }
                fbk
            });
            timings.cheb_single += dt;
            fbk
        };

        // First solve, warm-started from the auxiliary solution u'_k.
        u.gather_columns_into(&[k], &mut uk);
        let guess =
            (k > 0 && cfg.record_guess_errors).then(|| uk.as_slice().to_vec());
        let (res1, dt) = time_span("mrhs/first_solve", || {
            cg(&rk, &fbk, uk.as_mut_slice(), &cfg.solve)
        });
        timings.first_solve += dt;
        let guess_relative_error = guess.map(|g| relative_error(uk.as_slice(), &g));

        let stats =
            midpoint_second_half(system, &cheb, uk.as_slice(), &fbk, cfg, timings);
        steps.push(StepStats {
            first_solve_iterations: res1.iterations,
            guess_relative_error,
            ..stats
        });
    }

    ChunkReport { m, block_iterations: block.iterations, steps }
}

/// Runs one time step of the original algorithm (paper Alg. 1): a cold
/// first solve, then the midpoint solve warm-started from it. `cheb`
/// caches the Chebyshev polynomial across steps; pass `None` initially
/// (or to force a bounds refresh) and reuse the returned cache.
pub fn run_original_step<S: ResistanceSystem, N: NoiseSource>(
    system: &mut S,
    noise: &mut N,
    cfg: &MrhsConfig,
    cheb_cache: &mut Option<ChebyshevSqrt>,
) -> StepStats {
    let n = system.dim();
    let mut timings = StepTimings::default();

    let (rk_full, dt) = time_span("mrhs/assemble", || system.assemble());
    timings.assemble += dt;

    let cheb = cheb_cache.get_or_insert_with(|| {
        let g =
            (rk_full.gershgorin_lower_bound(), rk_full.gershgorin_upper_bound());
        let b = spectral_bounds(&rk_full, cfg.lanczos_steps, Some(g));
        ChebyshevSqrt::new(
            b.lo / cfg.bounds_margin,
            b.hi * cfg.bounds_margin,
            cfg.cheb_order,
        )
    });

    let (rk, dt) = time_span("mrhs/assemble", || StepOperator::build(rk_full, cfg));
    timings.assemble += dt;

    let mut zk = vec![0.0; n];
    noise.fill_standard_normal(&mut zk);
    let (fbk, dt) = time_span("mrhs/cheb_single", || {
        let mut fbk = vec![0.0; n];
        cheb.apply(&rk, &zk, &mut fbk);
        let mut ext = vec![0.0; n];
        system.add_external_forces(&mut ext);
        for (v, e) in fbk.iter_mut().zip(&ext) {
            *v = -*v - e;
        }
        fbk
    });
    timings.cheb_single += dt;

    // Cold first solve (no initial guess available in the original
    // algorithm).
    let mut uk = vec![0.0; n];
    let (res1, dt) =
        time_span("mrhs/first_solve", || cg(&rk, &fbk, &mut uk, &cfg.solve));
    timings.first_solve += dt;

    let cheb = cheb.clone();
    let stats = midpoint_second_half(system, &cheb, &uk, &fbk, cfg, timings);
    StepStats {
        first_solve_iterations: res1.iterations,
        guess_relative_error: None,
        ..stats
    }
}

/// Shared tail of both algorithms: advance to the midpoint, solve
/// `R(r_{k+1/2})·u_{k+1/2} = b` warm-started from `u_k`, return to the
/// start of the step, and advance by the full `Δt·u_{k+1/2}`.
fn midpoint_second_half<S: ResistanceSystem>(
    system: &mut S,
    _cheb: &ChebyshevSqrt,
    u_first: &[f64],
    b: &[f64],
    cfg: &MrhsConfig,
    mut timings: StepTimings,
) -> StepStats {
    let dt = system.dt();
    let saved = system.save_state();
    system.advance(u_first, 0.5 * dt);

    let (r_mid, el) =
        time_span("mrhs/assemble", || StepOperator::build(system.assemble(), cfg));
    timings.assemble += el;

    let mut u_mid = u_first.to_vec(); // warm start from the first solve
    let (res2, el) =
        time_span("mrhs/second_solve", || cg(&r_mid, b, &mut u_mid, &cfg.solve));
    timings.second_solve += el;

    system.restore_state(&saved);
    system.advance(&u_mid, dt);

    StepStats {
        first_solve_iterations: 0,
        second_solve_iterations: res2.iterations,
        guess_relative_error: None,
        timings,
    }
}

fn relative_error(solution: &[f64], guess: &[f64]) -> f64 {
    let mut diff = 0.0;
    let mut norm = 0.0;
    for (s, g) in solution.iter().zip(guess) {
        diff += (s - g) * (s - g);
        norm += s * s;
    }
    if norm == 0.0 {
        0.0
    } else {
        (diff / norm).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::XorShiftNoise;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    /// A synthetic resistance system: particles on a periodic line with
    /// spring-like couplings whose strength depends on separation, so
    /// the matrix genuinely evolves with the configuration.
    struct LineSystem {
        positions: Vec<f64>, // one scalar coordinate per particle
        dt: f64,
    }

    impl LineSystem {
        fn new(n_particles: usize) -> Self {
            LineSystem {
                positions: (0..n_particles).map(|i| i as f64).collect(),
                dt: 0.05,
            }
        }
    }

    impl ResistanceSystem for LineSystem {
        fn dim(&self) -> usize {
            self.positions.len() * 3
        }

        fn assemble(&self) -> BcrsMatrix {
            let nb = self.positions.len();
            let mut t = BlockTripletBuilder::square(nb);
            for i in 0..nb {
                t.add(i, i, Block3::scaled_identity(4.0));
                if i + 1 < nb {
                    let d = (self.positions[i + 1] - self.positions[i]).abs();
                    let w = 1.0 / (0.5 + d * d);
                    t.add(i, i, Block3::scaled_identity(w));
                    t.add(i + 1, i + 1, Block3::scaled_identity(w));
                    t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-w));
                }
            }
            t.build()
        }

        fn advance(&mut self, u: &[f64], dt: f64) {
            // Use the x-component of each particle's velocity.
            for (i, p) in self.positions.iter_mut().enumerate() {
                *p += dt * u[3 * i];
            }
        }

        fn dt(&self) -> f64 {
            self.dt
        }

        fn save_state(&self) -> Vec<f64> {
            self.positions.clone()
        }

        fn restore_state(&mut self, state: &[f64]) {
            self.positions.copy_from_slice(state);
        }
    }

    #[test]
    fn mrhs_chunk_advances_m_steps() {
        let mut sys = LineSystem::new(20);
        let before = sys.positions.clone();
        let mut noise = XorShiftNoise::new(1);
        let cfg = MrhsConfig { m: 4, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        assert_eq!(report.steps.len(), 4);
        assert!(report.block_iterations > 0);
        assert_ne!(before, sys.positions);
    }

    #[test]
    fn symmetric_storage_matches_full_storage_trajectory() {
        // Same system, same noise stream: the symmetric-storage chunk
        // must reproduce the full-storage trajectory (the operator is
        // mathematically identical, only its layout changes).
        let mut sys_full = LineSystem::new(24);
        let mut noise_full = XorShiftNoise::new(77);
        let cfg_full = MrhsConfig { m: 4, ..Default::default() };
        run_mrhs_chunk(&mut sys_full, &mut noise_full, &cfg_full);

        let mut sys_sym = LineSystem::new(24);
        let mut noise_sym = XorShiftNoise::new(77);
        let cfg_sym =
            MrhsConfig { m: 4, symmetric_storage: true, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys_sym, &mut noise_sym, &cfg_sym);

        assert_eq!(report.steps.len(), 4);
        for (a, b) in sys_full.positions.iter().zip(&sys_sym.positions) {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "trajectories diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn symmetric_storage_falls_back_on_asymmetric_matrix() {
        // A system whose matrix is *not* symmetric: the switch must fall
        // back to full storage instead of corrupting the solve.
        struct Skew(LineSystem);
        impl ResistanceSystem for Skew {
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn assemble(&self) -> BcrsMatrix {
                let mut a = self.0.assemble();
                // perturb one off-diagonal block asymmetrically
                if a.nnz_blocks() > 1 {
                    a.blocks_mut()[1].0[1] += 0.01;
                }
                a
            }
            fn advance(&mut self, u: &[f64], dt: f64) {
                self.0.advance(u, dt)
            }
            fn dt(&self) -> f64 {
                self.0.dt()
            }
            fn save_state(&self) -> Vec<f64> {
                self.0.save_state()
            }
            fn restore_state(&mut self, state: &[f64]) {
                self.0.restore_state(state)
            }
        }
        let mut sys = Skew(LineSystem::new(10));
        let mut noise = XorShiftNoise::new(13);
        let cfg =
            MrhsConfig { m: 2, symmetric_storage: true, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        assert_eq!(report.steps.len(), 2);
        assert!(report.steps.iter().all(|s| s.second_solve_iterations > 0));
    }

    #[test]
    fn guesses_cut_iterations_versus_baseline() {
        // Same system, same noise stream: warm-started steps of the MRHS
        // chunk should need fewer first-solve iterations than the cold
        // baseline steps.
        let cfg = MrhsConfig { m: 8, ..Default::default() };

        let mut sys_a = LineSystem::new(30);
        let mut noise_a = XorShiftNoise::new(99);
        let report = run_mrhs_chunk(&mut sys_a, &mut noise_a, &cfg);

        let mut sys_b = LineSystem::new(30);
        let mut noise_b = XorShiftNoise::new(99);
        let mut cache = None;
        let mut cold_iters = Vec::new();
        for _ in 0..8 {
            let s = run_original_step(&mut sys_b, &mut noise_b, &cfg, &mut cache);
            cold_iters.push(s.first_solve_iterations);
        }

        let warm: f64 = report.steps[1..]
            .iter()
            .map(|s| s.first_solve_iterations as f64)
            .sum::<f64>()
            / (report.steps.len() - 1) as f64;
        let cold: f64 = cold_iters[1..].iter().map(|&v| v as f64).sum::<f64>()
            / (cold_iters.len() - 1) as f64;
        assert!(warm < cold, "warm-start mean {warm} should beat cold mean {cold}");
    }

    #[test]
    fn guess_errors_grow_with_step_index() {
        let mut sys = LineSystem::new(25);
        let mut noise = XorShiftNoise::new(5);
        let cfg = MrhsConfig { m: 8, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        let errs: Vec<f64> =
            report.steps.iter().filter_map(|s| s.guess_relative_error).collect();
        assert_eq!(errs.len(), 7);
        // √t-like growth: the last error should exceed the first.
        assert!(errs.last().unwrap() >= errs.first().unwrap());
        assert!(errs.iter().all(|&e| e.is_finite() && e >= 0.0));
    }

    #[test]
    fn second_solve_warm_start_is_cheap() {
        let mut sys = LineSystem::new(20);
        let mut noise = XorShiftNoise::new(3);
        let cfg = MrhsConfig::default();
        let mut cache = None;
        let s = run_original_step(&mut sys, &mut noise, &cfg, &mut cache);
        // Midpoint matrix is near R_k, so the warm-started second solve
        // should need no more iterations than the cold first solve.
        assert!(s.second_solve_iterations <= s.first_solve_iterations);
    }

    #[test]
    fn chunk_head_work_recorded_once() {
        let mut sys = LineSystem::new(15);
        let mut noise = XorShiftNoise::new(2);
        let cfg = MrhsConfig { m: 4, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        let with_head: Vec<bool> = report
            .steps
            .iter()
            .map(|s| {
                s.timings.cheb_vectors.as_nanos() > 0
                    || s.timings.calc_guesses.as_nanos() > 0
            })
            .collect();
        assert!(with_head[0]);
        assert!(with_head[1..].iter().all(|&b| !b));
    }

    #[test]
    fn original_step_reuses_cheb_cache() {
        let mut sys = LineSystem::new(10);
        let mut noise = XorShiftNoise::new(4);
        let cfg = MrhsConfig::default();
        let mut cache = None;
        run_original_step(&mut sys, &mut noise, &cfg, &mut cache);
        assert!(cache.is_some());
        let interval = cache.as_ref().unwrap().interval();
        run_original_step(&mut sys, &mut noise, &cfg, &mut cache);
        assert_eq!(cache.as_ref().unwrap().interval(), interval);
    }

    #[test]
    fn telemetry_spans_subsume_step_timings() {
        mrhs_telemetry::set_enabled(true);
        let before = mrhs_telemetry::snapshot();
        let mut sys = LineSystem::new(15);
        let mut noise = XorShiftNoise::new(21);
        let cfg = MrhsConfig { m: 3, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        let diff = mrhs_telemetry::snapshot().diff(&before);

        let view = StepTimings::from_span_totals(&diff);
        let mut sum = StepTimings::default();
        for s in &report.steps {
            sum.accumulate(&s.timings);
        }
        // The spans are fed from the exact durations StepTimings adds
        // up, so the snapshot view covers the bookkeeping total.
        // (Strictly ≥: concurrently running tests may add to the global
        // registry, never subtract.)
        assert!(view.total() >= sum.total(), "{view:?} vs {sum:?}");
        assert!(view.first_solve >= sum.first_solve);
        assert!(view.second_solve >= sum.second_solve);
        assert!(view.calc_guesses >= sum.calc_guesses);
        assert!(view.cheb_vectors >= sum.cheb_vectors);
    }

    #[test]
    fn average_step_seconds_is_positive() {
        let mut sys = LineSystem::new(10);
        let mut noise = XorShiftNoise::new(8);
        let cfg = MrhsConfig { m: 2, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        assert!(report.average_step_seconds() > 0.0);
    }
}
