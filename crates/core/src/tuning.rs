//! Choosing the number of right-hand sides.
//!
//! The paper's Eq. 9 expresses the average per-step time of the MRHS
//! algorithm in terms of the GSPMV cost curve `T(m)` and the measured
//! iteration counts:
//!
//! ```text
//! T_mrhs(m) = (1/m)·[ N·T(m) + C_max·T(m)
//!                     + (m−1)·N₁·T(1) + m·N₂·T(1) + (m−1)·C_max·T(1) ]
//! ```
//!
//! where `N` is the cold iteration count, `N₁`/`N₂` the warm-started
//! first/second-solve counts, and `C_max` the Chebyshev order. §V-B3
//! shows the minimizer sits near `m_s`, the point where GSPMV switches
//! from bandwidth- to compute-bound. This module evaluates Eq. 9 on a
//! *measured* cost curve and picks the minimizer, and detects `m_s`
//! from the curve shape.

/// Iteration counts entering Eq. 9.
#[derive(Clone, Copy, Debug)]
pub struct IterationCounts {
    /// Cold first-solve iterations `N` (no initial guess).
    pub cold: usize,
    /// Warm first-solve iterations `N₁` (with MRHS guess).
    pub warm_first: usize,
    /// Warm second-solve iterations `N₂`.
    pub warm_second: usize,
    /// Chebyshev order `C_max`.
    pub cheb_order: usize,
}

/// Evaluates Eq. 9 for one `m` given `T(m)` and `T(1)` in arbitrary
/// (consistent) time units.
pub fn tmrhs(m: usize, t_m: f64, t_1: f64, it: &IterationCounts) -> f64 {
    assert!(m >= 1);
    let (n, n1, n2, cmax) = (
        it.cold as f64,
        it.warm_first as f64,
        it.warm_second as f64,
        it.cheb_order as f64,
    );
    let mf = m as f64;
    ((n + cmax) * t_m
        + (mf - 1.0) * n1 * t_1
        + mf * n2 * t_1
        + (mf - 1.0) * cmax * t_1)
        / mf
}

/// Average per-step time of the *original* algorithm in the same units:
/// `N·T(1) + N₂·T(1) + C_max·T(1)` (cold first solve, warm second solve,
/// one single-vector Chebyshev).
pub fn toriginal(t_1: f64, it: &IterationCounts) -> f64 {
    (it.cold as f64 + it.warm_second as f64 + it.cheb_order as f64) * t_1
}

/// Given a measured GSPMV cost curve `costs = [(m, T(m)); …]` (must
/// contain `m = 1`), returns the `m` minimizing Eq. 9.
pub fn optimal_m_from_costs(costs: &[(usize, f64)], it: &IterationCounts) -> usize {
    let t1 = costs
        .iter()
        .find(|(m, _)| *m == 1)
        .map(|(_, t)| *t)
        .expect("cost curve must include m = 1");
    let mut best = (1usize, f64::INFINITY);
    for &(m, t_m) in costs {
        let v = tmrhs(m, t_m, t1, it);
        if v < best.1 {
            best = (m, v);
        }
    }
    best.0
}

/// Detects `m_s`, the bandwidth→compute switch point, from a measured
/// relative-time curve `r = [(m, r(m)); …]` sorted by `m`: in the
/// bandwidth-bound regime the marginal cost per added vector is small;
/// in the compute-bound regime `r(m)` grows linearly with slope
/// `r_∞ = T_comp(1 vector)·1/T(1)`. We estimate the asymptotic slope
/// from the curve tail and return the first `m` whose forward marginal
/// cost reaches 80% of it.
pub fn detect_switch_point(curve: &[(usize, f64)]) -> usize {
    assert!(curve.len() >= 3, "need at least three samples");
    for w in curve.windows(2) {
        assert!(w[0].0 < w[1].0, "curve must be sorted by m");
    }
    // Asymptotic marginal slope from the last two samples.
    let (m_a, r_a) = curve[curve.len() - 2];
    let (m_b, r_b) = curve[curve.len() - 1];
    let tail_slope = (r_b - r_a) / (m_b - m_a) as f64;
    if tail_slope <= 0.0 {
        // Never became compute-bound within the measured range.
        return curve.last().unwrap().0;
    }
    for w in curve.windows(2) {
        let slope = (w[1].1 - w[0].1) / (w[1].0 - w[0].0) as f64;
        if slope >= 0.8 * tail_slope {
            return w[0].0.max(1);
        }
    }
    curve.last().unwrap().0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> IterationCounts {
        // The paper's Fig. 7 parameters.
        IterationCounts {
            cold: 162,
            warm_first: 80,
            warm_second: 63,
            cheb_order: 30,
        }
    }

    /// A synthetic cost curve: bandwidth-bound (slowly growing) until
    /// m_s, then compute-bound (linear).
    fn synthetic_costs(ms: usize, max_m: usize) -> Vec<(usize, f64)> {
        // Bandwidth bound grows slowly; the compute bound is linear in m
        // and calibrated to cross the bandwidth bound exactly at m = ms.
        let bw = |m: usize| 1.0 + 0.05 * (m - 1) as f64;
        let comp_slope = bw(ms) / ms as f64;
        (1..=max_m).map(|m| (m, bw(m).max(comp_slope * m as f64))).collect()
    }

    #[test]
    fn tmrhs_at_m1_close_to_original_plus_extra_solve() {
        let it = counts();
        // With m = 1 the MRHS chunk is one block solve (N iters) plus the
        // per-step solves: strictly more work than the original step.
        let t = tmrhs(1, 1.0, 1.0, &it);
        let orig = toriginal(1.0, &it);
        assert!(t > orig * 0.9);
    }

    #[test]
    fn optimal_m_near_switch_point() {
        let it = counts();
        for ms in [5usize, 10, 15] {
            let costs = synthetic_costs(ms, 40);
            let mo = optimal_m_from_costs(&costs, &it);
            assert!(mo.abs_diff(ms) <= 3, "m_optimal {mo} should be near m_s {ms}");
        }
    }

    #[test]
    fn mrhs_beats_original_at_optimal_m() {
        let it = counts();
        let costs = synthetic_costs(12, 40);
        let mo = optimal_m_from_costs(&costs, &it);
        let t_m = costs.iter().find(|(m, _)| *m == mo).unwrap().1;
        assert!(tmrhs(mo, t_m, 1.0, &it) < toriginal(1.0, &it));
    }

    #[test]
    fn detect_switch_point_on_synthetic_curve() {
        for ms in [6usize, 12, 20] {
            let curve = synthetic_costs(ms, 40);
            let got = detect_switch_point(&curve);
            assert!(got.abs_diff(ms) <= 2, "got {got}, want ≈{ms}");
        }
    }

    #[test]
    fn detect_switch_point_bandwidth_only_curve() {
        // Diagonal-like matrix: never compute-bound.
        let curve: Vec<(usize, f64)> =
            (1..=16).map(|m| (m, 1.0 + 0.02 * m as f64)).collect();
        // With a flat tail the detector returns a boundary value; it
        // must not panic and must return a sampled m.
        let got = detect_switch_point(&curve);
        assert!(curve.iter().any(|(m, _)| *m == got));
    }

    #[test]
    #[should_panic(expected = "must include m = 1")]
    fn optimal_m_requires_unit_sample() {
        optimal_m_from_costs(&[(2, 1.0), (4, 1.5)], &counts());
    }
}
