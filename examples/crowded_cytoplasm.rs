//! A crowded-cytoplasm simulation — the application from the paper's
//! motivation: macromolecules diffusing in the E. coli cytoplasm at
//! high volume occupancy, where lubrication forces dominate and
//! Brownian displacements follow the √t law.
//!
//! Runs several MRHS chunks, tracks particle mean squared displacement
//! (should grow ~linearly in time: diffusive motion), and reports how
//! the warm-start quality decays over each chunk.
//!
//! ```text
//! cargo run --release --example crowded_cytoplasm
//! ```

use mrhs::core::{run_mrhs_chunk, MrhsConfig, ResistanceSystem};
use mrhs::stokes::SystemBuilder;

fn main() {
    let n = 400;
    let (mut system, mut noise) =
        SystemBuilder::new(n).volume_fraction(0.5).seed(7).build_with_noise();
    let box_len = system.particles().box_lengths()[0];
    println!("crowded cytoplasm: {n} proteins, 50% occupancy, box {box_len:.0} A");

    let start: Vec<[f64; 3]> = system.particles().positions().to_vec();
    let mut unwrapped = start.clone();
    let mut last = start.clone();

    let cfg = MrhsConfig { m: 8, ..Default::default() };
    let chunks = 3;
    let mut step = 0usize;
    for chunk in 0..chunks {
        let report = run_mrhs_chunk(&mut system, &mut noise, &cfg);

        // Unwrap periodic positions to accumulate true displacements.
        for (u, (p, l)) in unwrapped
            .iter_mut()
            .zip(system.particles().positions().iter().zip(last.iter()))
        {
            for d in 0..3 {
                let mut delta = p[d] - l[d];
                delta -= box_len * (delta / box_len).round();
                u[d] += delta;
            }
        }
        last = system.particles().positions().to_vec();

        step += report.steps.len();
        let msd: f64 = unwrapped
            .iter()
            .zip(&start)
            .map(|(u, s)| {
                (0..3).map(|d| (u[d] - s[d]) * (u[d] - s[d])).sum::<f64>()
            })
            .sum::<f64>()
            / n as f64;
        let err_first = report.steps[1].guess_relative_error.unwrap_or(0.0);
        let err_last =
            report.steps.last().unwrap().guess_relative_error.unwrap_or(0.0);
        println!(
            "chunk {chunk}: {} steps (total {step}), MSD {msd:.3} A^2, block solve \
             {} it, guess error {err_first:.2e} -> {err_last:.2e}",
            report.steps.len(),
            report.block_iterations
        );
    }

    // Diffusive sanity: MSD per step roughly constant (linear growth).
    println!(
        "\nfinal matrix: {} block rows, dt = {}",
        system.assemble().nb_rows(),
        system.dt()
    );
    println!("done: {step} Brownian time steps via the MRHS algorithm");
}
