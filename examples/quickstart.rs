//! Quickstart: the MRHS algorithm in five minutes.
//!
//! Builds a small crowded suspension, runs one chunk of the MRHS
//! algorithm and the same steps with the original algorithm, and prints
//! the iteration savings — the paper's headline effect.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mrhs::core::{run_mrhs_chunk, run_original_step, MrhsConfig};
use mrhs::stokes::SystemBuilder;

fn main() {
    // 1. A periodic box of 500 spheres drawn from the E. coli protein
    //    size distribution, packed to 40% volume occupancy.
    let (mut system, mut noise) =
        SystemBuilder::new(500).volume_fraction(0.4).seed(42).build_with_noise();
    println!(
        "system: {} particles, box {:.0} A, occupancy {:.2}",
        system.particles().len(),
        system.particles().box_lengths()[0],
        system.particles().volume_fraction()
    );

    // 2. One MRHS chunk: m = 8 time steps whose first solves are warm-
    //    started from ONE auxiliary block solve with 8 right-hand sides.
    let cfg = MrhsConfig { m: 8, ..Default::default() };
    let report = run_mrhs_chunk(&mut system, &mut noise, &cfg);
    println!(
        "\nMRHS chunk (m = {}): auxiliary block solve took {} iterations",
        report.m, report.block_iterations
    );
    for (k, s) in report.steps.iter().enumerate() {
        println!(
            "  step {k}: first solve {:>3} it, midpoint solve {:>3} it{}",
            s.first_solve_iterations,
            s.second_solve_iterations,
            s.guess_relative_error
                .map(|e| format!(", guess error {e:.2e}"))
                .unwrap_or_default()
        );
    }

    // 3. The same steps with the original algorithm (cold first solves)
    //    on an identical system and noise stream.
    let (mut baseline, mut noise2) =
        SystemBuilder::new(500).volume_fraction(0.4).seed(42).build_with_noise();
    let mut cache = None;
    let mut cold = Vec::new();
    for _ in 0..cfg.m {
        let s = run_original_step(&mut baseline, &mut noise2, &cfg, &mut cache);
        cold.push(s.first_solve_iterations);
    }

    let warm_mean: f64 = report.steps[1..]
        .iter()
        .map(|s| s.first_solve_iterations as f64)
        .sum::<f64>()
        / (report.steps.len() - 1) as f64;
    let cold_mean: f64 =
        cold.iter().map(|&v| v as f64).sum::<f64>() / cold.len() as f64;
    println!(
        "\nwarm-started mean {:.1} iterations vs cold {:.1} -> {:.0}% fewer \
         (paper: 30-40%)",
        warm_mean,
        cold_mean,
        100.0 * (1.0 - warm_mean / cold_mean)
    );
}
