//! A bonded polymer chain in a crowded suspension — the `f_P ≠ 0`
//! extension the paper names in §II-A ("bonded forces for simulating
//! long-chain molecules as a bonded chain of particles").
//!
//! A 12-bead chain is threaded through a sea of crowder particles; the
//! chain's bonds enter the governing equation as the deterministic
//! force `f_P`, and the whole system is advanced with the MRHS
//! algorithm. Tracks bond energy (should stay bounded — bonds hold) and
//! the diffusion of chain vs crowder particles.
//!
//! ```text
//! cargo run --release --example polymer_chain
//! ```

use mrhs::core::{run_mrhs_chunk, MrhsConfig, ResistanceSystem};
use mrhs::stokes::analysis::MsdTracker;
use mrhs::stokes::forces::bond_energy;
use mrhs::stokes::{chain_bonds, GaussianNoise, SystemBuilder};

fn main() {
    let n = 300;
    let chain_len = 12;
    let system = SystemBuilder::new(n).volume_fraction(0.35).seed(21).build();

    // Thread the chain greedily: start at particle 0 and repeatedly hop
    // to the nearest not-yet-used particle, so bonded beads start near
    // contact.
    let indices: Vec<usize> = {
        let p = system.particles();
        let mut used = vec![false; n];
        let mut chain = vec![0usize];
        used[0] = true;
        while chain.len() < chain_len {
            let last = *chain.last().unwrap();
            let next = (0..n)
                .filter(|&j| !used[j])
                .min_by(|&a, &b| {
                    p.distance(last, a).partial_cmp(&p.distance(last, b)).unwrap()
                })
                .unwrap();
            used[next] = true;
            chain.push(next);
        }
        chain
    };
    let bonds = chain_bonds(system.particles(), &indices, 1.1, 5.0);
    let mut system = system.with_bonds(bonds);
    println!(
        "{n} particles at 35% occupancy; {chain_len}-bead chain with {} bonds",
        system.bonds().len()
    );
    println!(
        "initial bond energy: {:.3}",
        bond_energy(system.particles(), system.bonds())
    );

    let mut noise = GaussianNoise::seed_from_u64(4);
    let cfg = MrhsConfig { m: 6, ..Default::default() };
    let mut msd = MsdTracker::new(system.particles());

    for chunk in 0..4 {
        let report = run_mrhs_chunk(&mut system, &mut noise, &cfg);
        let m = msd.record(system.particles(), cfg.m as f64 * system.dt());
        println!(
            "chunk {chunk}: block solve {:>3} it, warm first solves {:>3}–{:>3} it, \
             MSD {m:8.3} A^2, bond energy {:8.3}",
            report.block_iterations,
            report
                .steps
                .iter()
                .map(|s| s.first_solve_iterations)
                .min()
                .unwrap(),
            report
                .steps
                .iter()
                .map(|s| s.first_solve_iterations)
                .max()
                .unwrap(),
            bond_energy(system.particles(), system.bonds())
        );
    }

    if let Some(d) = msd.diffusion_constant() {
        println!("\napparent diffusion constant: {d:.4} A^2 per time unit");
    }

    // The chain must not have flown apart: every bond within 3x rest.
    let max_stretch = system
        .bonds()
        .iter()
        .map(|b| system.particles().distance(b.i, b.j) / b.rest_length)
        .fold(0.0f64, f64::max);
    println!("max bond stretch: {max_stretch:.2}x rest length");
    assert!(max_stretch < 3.0, "chain integrity");
    println!("chain held together through Brownian motion — f_P works");
}
