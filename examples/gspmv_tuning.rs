//! GSPMV auto-tuning: measure this machine, pick the number of
//! right-hand sides.
//!
//! Calibrates a machine profile on the host (STREAM-like bandwidth and
//! basic-kernel flop rate), measures the relative-time curve r(m) for
//! an SD matrix, and reports the model's switch point `m_s` and the
//! Eq. 9 optimum `m_optimal` — the procedure a user would run before a
//! long simulation campaign.
//!
//! ```text
//! cargo run --release --example gspmv_tuning
//! ```

use mrhs::core::tuning::{optimal_m_from_costs, IterationCounts};
use mrhs::perfmodel::measure::{host_profile, time_gspmv};
use mrhs::perfmodel::GspmvModel;
use mrhs::stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};

fn main() {
    println!("calibrating host...");
    let host = host_profile();
    println!(
        "  bandwidth B = {:.1} GB/s, kernel rate F = {:.1} Gflop/s, B/F = {:.2}",
        host.bandwidth / 1e9,
        host.flops / 1e9,
        host.byte_per_flop()
    );

    let system = SystemBuilder::new(1500).volume_fraction(0.5).seed(11).build();
    let a = assemble_resistance(system.particles(), &ResistanceConfig::default());
    println!(
        "\nSD matrix: nb = {}, nnzb/nb = {:.1}",
        a.nb_rows(),
        a.blocks_per_row()
    );

    let ms = [1usize, 2, 4, 8, 12, 16, 24, 32];
    println!("\nmeasured GSPMV cost curve:");
    println!("{:>4} {:>12} {:>8} {:>8}", "m", "T(m) [us]", "r(m)", "model");
    let model = GspmvModel::new(&a.stats(), host);
    let costs: Vec<(usize, f64)> =
        ms.iter().map(|&m| (m, time_gspmv(&a, m, 5))).collect();
    let t1 = costs[0].1;
    for &(m, t) in &costs {
        println!(
            "{m:>4} {:>12.1} {:>8.2} {:>8.2}",
            t * 1e6,
            t / t1,
            model.relative_time(m)
        );
    }

    println!(
        "\nmodel switch point m_s = {}",
        model
            .switch_point()
            .map_or("never (bandwidth-bound)".into(), |v: usize| v.to_string())
    );
    println!(
        "model: {} vectors fit within 2x the single-vector time",
        model.vectors_within_factor(2.0)
    );

    // With typical SD iteration counts, the Eq. 9 optimum:
    let counts = IterationCounts {
        cold: 120,
        warm_first: 60,
        warm_second: 50,
        cheb_order: 30,
    };
    let mo = optimal_m_from_costs(&costs, &counts);
    println!(
        "\nEq. 9 with N = {}, N1 = {}, N2 = {}, Cmax = {} on the measured curve:\n  \
         use m = {mo} right-hand sides on this machine",
        counts.cold, counts.warm_first, counts.warm_second, counts.cheb_order
    );
}
