//! Block solvers for uncertainty quantification — the "natural" MRHS
//! use case from the paper's introduction: many perturbed right-hand
//! sides available simultaneously, solved together so every iteration's
//! matrix pass is amortized over all of them (GSPMV).
//!
//! Compares block CG against m independent CG solves on the same SD
//! resistance matrix and prints iteration and matrix-pass counts.
//!
//! ```text
//! cargo run --release --example block_solver_uq
//! ```

use mrhs::solvers::{block_cg, cg, CountingOperator, SolveConfig};
use mrhs::sparse::MultiVec;
use mrhs::stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // One resistance matrix, m right-hand sides: a nominal force vector
    // plus small random perturbations (the UQ ensemble).
    let system = SystemBuilder::new(600).volume_fraction(0.4).seed(3).build();
    let a = assemble_resistance(system.particles(), &ResistanceConfig::default());
    let n = a.n_rows();
    let m = 8;
    println!(
        "resistance matrix: n = {n}, nnzb/nb = {:.1}; ensemble of {m} RHS",
        a.blocks_per_row()
    );

    let mut rng = StdRng::seed_from_u64(1);
    let nominal: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut b = MultiVec::zeros(n, m);
    for j in 0..m {
        let perturbed: Vec<f64> = nominal
            .iter()
            .map(|v| v + 0.05 * (rng.random::<f64>() - 0.5))
            .collect();
        b.set_column(j, &perturbed);
    }

    let cfg = SolveConfig { tol: 1e-8, max_iter: 2000 };

    // Block CG: one GSPMV per iteration, all m columns at once.
    let counter = CountingOperator::new(&a);
    let mut x_block = MultiVec::zeros(n, m);
    let block = block_cg(&counter, &b, &mut x_block, &cfg);
    println!(
        "\nblock CG : {} iterations, {} GSPMV calls ({} matrix passes)",
        block.iterations,
        counter.multi_applies(),
        counter.multi_applies()
    );

    // Independent CG solves: one SPMV per iteration per column.
    let counter2 = CountingOperator::new(&a);
    let mut total_iters = 0;
    for j in 0..m {
        let mut x = vec![0.0; n];
        let r = cg(&counter2, &b.column(j), &mut x, &cfg);
        assert!(r.converged);
        total_iters += r.iterations;
        // solutions must agree
        for (u, v) in x.iter().zip(&x_block.column(j)) {
            assert!((u - v).abs() < 1e-5, "column {j} disagrees");
        }
    }
    println!(
        "m x CG   : {total_iters} total iterations, {} SPMV calls ({} matrix passes)",
        counter2.single_applies(),
        counter2.single_applies()
    );

    let passes_block = counter.multi_applies() as f64;
    let passes_single = counter2.single_applies() as f64;
    println!(
        "\nmatrix is streamed from memory {passes_single:.0} times for the \
         independent solves,\nbut only {passes_block:.0} times for the block \
         solve — a {:.1}x reduction in matrix traffic\n(each GSPMV pass costs \
         barely more than an SPMV pass: the paper's Fig. 2)",
        passes_single / passes_block
    );
}
