//! Umbrella crate re-exporting the MRHS workspace.
//!
//! This is the crate downstream users depend on; it re-exports the
//! public APIs of every subsystem so `use mrhs::...` reaches everything:
//!
//! * [`sparse`] — BCRS matrices, multivectors, SPMV/GSPMV kernels.
//! * [`solvers`] — CG, block CG, Chebyshev matrix square root.
//! * [`core`] — the MRHS algorithm and the [`core::ResistanceSystem`] trait.
//! * [`stokes`] — the Stokesian dynamics application.
//! * [`perfmodel`] — the GSPMV and MRHS performance models.
//! * [`cluster`] — distributed GSPMV execution and time modeling.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use mrhs_cluster as cluster;
pub use mrhs_core as core;
pub use mrhs_perfmodel as perfmodel;
pub use mrhs_solvers as solvers;
pub use mrhs_sparse as sparse;
pub use mrhs_stokes as stokes;
