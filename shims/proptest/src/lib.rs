//! Offline `proptest` shim.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the subset of the proptest API its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, plus
//!   strategies for numeric ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], and [`array::uniform9`];
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`), and
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! It is a straight random-input runner: each `#[test]` draws
//! `config.cases` inputs from a generator seeded deterministically by
//! the test's module path, so failures are reproducible run-to-run.
//! There is **no shrinking** — a failing case reports the case number
//! and the assertion message only. That trades debuggability for zero
//! dependencies; the deterministic seed means a failure can still be
//! replayed under a debugger.
//!
//! # Regression seed corpora
//!
//! Like real proptest, the runner replays committed failure seeds
//! before generating fresh cases. For an integration-test file
//! `tests/foo.rs` it reads `tests/foo.proptest-regressions` (resolved
//! against the crate's `CARGO_MANIFEST_DIR`); every line of the form
//!
//! ```text
//! cc <16 hex digits>   # optional note
//! ```
//!
//! is a saved [`test_runner::TestRng`] state, replayed by **every**
//! `proptest!` test in that file (a seed that triggers nothing in a
//! sibling test is harmless — it just adds one passing case). When a
//! fresh case fails, the panic message prints the `cc <hex>` line to
//! append to the corpus, which is this shim's substitute for
//! shrinking: check the seed in, and from then on every run — local or
//! CI — re-executes that exact case first. See DESIGN.md §11 for the
//! workflow.

pub mod test_runner {
    /// Deterministic generator driving input generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name so every test has its own
        /// reproducible stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Restores a generator from a state captured by
        /// [`TestRng::state`] — the replay half of the regression-seed
        /// corpus machinery.
        pub fn from_state(state: u64) -> Self {
            TestRng { state }
        }

        /// The current generator state. Captured at the start of each
        /// case so a failure can be reported as a replayable
        /// `cc <hex>` corpus line.
        pub fn state(&self) -> u64 {
            self.state
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// How a single generated case ended, when it did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Runner knobs. Only `cases` is modelled.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod regressions {
    //! Loading of committed `*.proptest-regressions` seed corpora.

    use std::path::{Path, PathBuf};

    /// The corpus path for a test source file: next to the file, same
    /// stem, `.proptest-regressions` extension. `source_file` is the
    /// `file!()` of the macro call site (a path relative to the
    /// workspace root), `manifest_dir` the crate's
    /// `CARGO_MANIFEST_DIR`; only the file stem of `source_file` is
    /// used, and the corpus is looked up in the crate's `tests/`
    /// directory (where every `proptest!` suite in this workspace
    /// lives).
    pub fn corpus_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let stem = Path::new(source_file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        Path::new(manifest_dir)
            .join("tests")
            .join(format!("{stem}.proptest-regressions"))
    }

    /// Reads the seed corpus for `source_file`. A missing file is an
    /// empty corpus; lines that are blank, comments, or not of the
    /// form `cc <16 hex digits>` are skipped (so historical files in
    /// real-proptest format do not break the runner).
    pub fn load(manifest_dir: &str, source_file: &str) -> Vec<u64> {
        let path = corpus_path(manifest_dir, source_file);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else {
                continue;
            };
            let token = rest.split_whitespace().next().unwrap_or("");
            if token.len() == 16 {
                if let Ok(seed) = u64::from_str_radix(token, 16) {
                    seeds.push(seed);
                }
            }
        }
        seeds
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking — a
    /// strategy is just a deterministic function of the runner RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    impl Strategy for core::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty usize range strategy");
            lo + rng.below(hi - lo + 1)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// `[T; 9]` with every element drawn from `element` — the 3×3 block
    /// shape used throughout the workspace tests.
    pub fn uniform9<S: Strategy>(element: S) -> UniformArray<S, 9> {
        UniformArray { element }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. Supports the `#![proptest_config(..)]` inner attribute and
/// `pattern in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let __case = |__rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __rng,
                        );
                    )+
                    $body
                    ::core::result::Result::Ok(())
                };
                // Committed regression seeds replay before any fresh
                // case; a seed rejected by prop_assume! is skipped.
                let __corpus = $crate::regressions::corpus_path(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                for __seed in $crate::regressions::load(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                ) {
                    let mut __rng =
                        $crate::test_runner::TestRng::from_state(__seed);
                    match __case(&mut __rng) {
                        ::core::result::Result::Ok(())
                        | ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest regression seed `cc {__seed:016x}` \
                             (from {}) failed: {}",
                            __corpus.display(),
                            msg,
                        ),
                    }
                }
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(256);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many prop_assume! rejections \
                         ({passed}/{} cases after {attempts} attempts)",
                        config.cases,
                    );
                    let __case_seed = __rng.state();
                    match __case(&mut __rng) {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest case {} of {} failed: {}\n\
                             replay: append `cc {__case_seed:016x}` to {}",
                            passed + 1,
                            config.cases,
                            msg,
                            __corpus.display(),
                        ),
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, but fails only the current generated case (with its
/// message) instead of unwinding from arbitrary depth.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: {} — {}",
                    stringify!($cond),
                    format!($($fmt)+),
                )),
            );
        }
    };
}

/// Equality assertion for generated cases. Does not require `Debug` on
/// the operands (the message quotes the expressions instead).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let __l = $lhs;
        let __r = $rhs;
        if !(__l == __r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: {} == {}",
                    stringify!($lhs),
                    stringify!($rhs),
                )),
            );
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let __l = $lhs;
        let __r = $rhs;
        if !(__l == __r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: {} == {} — {}",
                    stringify!($lhs),
                    stringify!($rhs),
                    format!($($fmt)+),
                )),
            );
        }
    }};
}

/// Discards the current case when the precondition does not hold; the
/// runner draws a replacement (bounded by a rejection cap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject,
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let u = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&u));
            let v = (2usize..=5).generate(&mut rng);
            assert!((2..=5).contains(&v));
            let x = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0usize..4, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let w = crate::collection::vec(0.0f64..1.0, 5).generate(&mut rng);
            assert_eq!(w.len(), 5);
        }
    }

    #[test]
    fn flat_map_sees_upstream_value() {
        let mut rng = TestRng::from_name("flat");
        let s = (1usize..=6)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..10, n)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn rng_state_round_trips() {
        let mut a = TestRng::from_name("state-round-trip");
        for _ in 0..5 {
            a.next_u64();
        }
        let snap = a.state();
        let mut b = TestRng::from_state(snap);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn regression_corpus_parses_cc_lines_only() {
        let dir = std::env::temp_dir().join("proptest-shim-corpus-test");
        std::fs::create_dir_all(dir.join("tests")).unwrap();
        std::fs::write(
            dir.join("tests/sample.proptest-regressions"),
            "# header comment\n\
             cc 00000000000000ff # note\n\
             cc deadbeefdeadbeef\n\
             cc 9e347e2bb8940fc5cc580414cd975bec # old 256-bit hash: skip\n\
             not a seed line\n\
             cc zzzzzzzzzzzzzzzz\n",
        )
        .unwrap();
        let seeds = crate::regressions::load(
            dir.to_str().unwrap(),
            "crates/whatever/tests/sample.rs",
        );
        assert_eq!(seeds, vec![0xff, 0xdead_beef_dead_beef]);
        assert!(crate::regressions::load(dir.to_str().unwrap(), "no_file.rs")
            .is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(n in 1usize..20, x in 0.0f64..1.0) {
            prop_assume!(n != 13);
            prop_assert!(x < 1.0 && n >= 1);
            prop_assert_eq!(n * 2, n + n, "arith on {n}");
        }

        #[test]
        fn tuple_patterns_bind((a, b) in (0usize..5, (Just(7usize), 0usize..3))) {
            let (seven, c) = b;
            prop_assert_eq!(seven, 7);
            prop_assert!(a < 5 && c < 3);
        }
    }
}
