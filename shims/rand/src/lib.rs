//! Offline `rand` shim.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the tiny slice of the rand 0.9 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random`] for `f64`. The generator is SplitMix64 — not
//! cryptographic, but statistically fine for packing initializers and
//! Gaussian noise, and deterministic for a given seed (which is all the
//! simulation code relies on).

/// Types that [`Rng::random`] can produce.
pub trait Sample {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// The part of rand's `Rng` trait this workspace calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// The part of rand's `SeedableRng` trait this workspace calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so nearby seeds do not yield nearby first outputs.
            let mut rng =
                StdRng { state: state.wrapping_add(0x9e37_79b9_7f4a_7c15) };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(20120521);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
