//! Offline `criterion` shim.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Two modes, selected by the command line the harness was launched
//! with (`harness = false` bench binaries receive `--bench` from
//! `cargo bench`):
//!
//! * **bench mode** (`--bench` present): calibrate a batch size, time
//!   `sample_size` batches, and print median/mean ns-per-iteration —
//!   a plain-text replacement for criterion's statistical report;
//! * **smoke mode** (anything else, e.g. `cargo test`): run each
//!   benchmark body exactly once so the benches act as compile-and-run
//!   regression tests without burning CI time.

use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `gspmv/8`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(
        name: impl std::fmt::Display,
        param: impl std::fmt::Display,
    ) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Bench,
    Smoke,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Bench
    } else {
        Mode::Smoke
    }
}

/// Entry point handed to each `criterion_group!` target.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: detect_mode() }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), mode: self.mode, sample_size: 30 }
    }

    /// Group-less convenience, mirroring criterion's `Criterion::bench_function`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    mode: Mode,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let label = self.qualify(&id.into());
        let mut b = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = self.qualify(&id.into());
        let mut b = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&label);
    }

    pub fn finish(self) {}

    fn qualify(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        }
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Calibrate a batch size that runs for roughly 2 ms, so timer
        // granularity is negligible even for nanosecond bodies.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed >= 2e-3 || batch >= 1 << 24 {
                break;
            }
            batch = if elapsed <= 0.0 {
                batch * 16
            } else {
                // Aim directly at the target with one refinement step.
                ((batch as f64 * 2.5e-3 / elapsed).ceil() as u64)
                    .clamp(batch + 1, batch * 16)
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }

    fn report(&mut self, label: &str) {
        if self.mode == Mode::Smoke {
            return;
        }
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let mean: f64 =
            self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{label:<40} median {median:>12.1} ns/iter   mean {mean:>12.1} ns/iter   ({} samples)",
            self.samples.len()
        );
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut count = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut b =
            Bencher { mode: Mode::Bench, sample_size: 5, samples: Vec::new() };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(x)
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("k", 8).label, "k/8");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
