//! Offline `crossbeam` shim.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the slice of crossbeam it uses: [`channel::unbounded`] MPMC
//! channels with cloneable senders *and* receivers. Semantics match
//! crossbeam where the halo-exchange code depends on them:
//!
//! * messages queued before the last sender drops are still delivered;
//! * `recv` only errors once the queue is empty and all senders are gone;
//! * `SendError<T>` is `Debug` without requiring `T: Debug`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (multi-consumer, shared queue).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the queue is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            // Receivers hold the only other Arc references; senders are
            // counted separately, so if the Arc count equals the sender
            // count no receiver can ever see this message.
            if Arc::strong_count(&self.chan)
                <= self.chan.senders.load(Ordering::SeqCst)
            {
                return Err(SendError(msg));
            }
            self.chan.queue.lock().unwrap().push_back(msg);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap();
            }
        }

        /// Non-blocking variant; `None` when nothing is queued right now.
        pub fn try_recv(&self) -> Option<T> {
            self.chan.queue.lock().unwrap().pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { chan: self.chan.clone() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_senders_share_one_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send("a").unwrap();
        tx2.send("b").unwrap();
        drop(tx);
        drop(tx2);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, ["a", "b"]);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn send_fails_once_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }
}
