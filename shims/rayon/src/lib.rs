//! Offline `rayon` shim.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the *subset* of the rayon API its kernels actually use:
//!
//! * [`current_num_threads`] — pool width (`RAYON_NUM_THREADS`
//!   overrides the detected core count, exactly like real rayon);
//! * [`scope`] / [`Scope::spawn`] — structured fork/join on a lazily
//!   started global pool of OS threads.
//!
//! The implementation is a plain injector queue (mutex + condvar)
//! feeding detached workers. `scope` keeps rayon's soundness contract:
//! it does not return until every job spawned on it has finished, which
//! is what makes the lifetime erasure in [`Scope::spawn`] safe. The
//! calling thread helps drain the queue while it waits, so a 1-core
//! host still makes progress and an N-core host gets N+1 lanes.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

impl Pool {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.work_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        }));
        for i in 0..current_num_threads() {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool.work_ready.wait(q).unwrap();
            }
        };
        job();
    }
}

/// Number of threads in the (lazily started) global pool. Honors the
/// `RAYON_NUM_THREADS` environment variable, read once on first use.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

/// A structured-concurrency scope: jobs spawned on it may borrow data
/// living at least as long as `'scope`.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant over 'scope, as in rayon.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the global pool. The enclosing [`scope`] call will
    /// not return before `f` completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = self.state.clone();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope { state: state.clone(), _marker: PhantomData };
            if catch_unwind(AssertUnwindSafe(|| f(&nested))).is_err() {
                state.panicked.store(true, Ordering::SeqCst);
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.all_done.notify_all();
            }
        });
        // SAFETY: `scope()` blocks until `pending` returns to zero, so
        // the job (and everything it borrows at 'scope) outlives its
        // execution; erasing the lifetime to feed the 'static pool queue
        // cannot create a dangling borrow.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
        };
        pool().push(job);
    }
}

/// Runs `op` with a [`Scope`], then blocks until every job spawned on
/// the scope has completed. Panics from jobs are propagated (like
/// rayon, without the payload). The calling thread executes queued jobs
/// while it waits.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        state: Arc::new(ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }),
        _marker: PhantomData,
    };
    let result = op(&s);
    // Help drain the queue; park only when it is empty.
    loop {
        if *s.state.pending.lock().unwrap() == 0 {
            break;
        }
        if let Some(job) = pool().try_pop() {
            job();
            continue;
        }
        let pending = s.state.pending.lock().unwrap();
        if *pending == 0 {
            break;
        }
        let (p, timeout) = s
            .state
            .all_done
            .wait_timeout(pending, std::time::Duration::from_millis(1))
            .unwrap();
        if *p == 0 {
            break;
        }
        drop(p);
        let _ = timeout;
    }
    if s.state.panicked.load(Ordering::SeqCst) {
        panic!("a task spawned in rayon::scope panicked");
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_all_jobs() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scoped_jobs_may_borrow_locals() {
        let mut parts = [0u64; 8];
        let chunks: Vec<&mut [u64]> = parts.chunks_mut(2).collect();
        scope(|s| {
            for (i, c) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for v in c.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        });
        assert!(parts.iter().all(|&v| v >= 1));
    }

    #[test]
    fn nested_spawn_completes_before_scope_returns() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(current_num_threads() >= 1);
    }
}
